"""Gazetteer data for South Korean administrative districts (circa 2012).

The study was run on Korean Twitter users, grouping locations by
administrative district: the seven metropolitan cities (Seoul, Busan,
Incheon, Daegu, Daejeon, Gwangju, Ulsan) are split into their *gu*
districts because "these cities are too large and the populations are
extremely high" (paper §III-B), while ordinary provinces (*-do*) are
grouped at the city (*-si*) / county (*-gun*) level.

Names are the conventional romanisations.  Centroids are approximate
(city-hall neighbourhood accuracy); that is sufficient because both the
synthetic GPS generator and the reverse geocoder share this single source
of truth, so a fix drawn "in Yangcheon-gu" always reverse-geocodes to
Yangcheon-gu.  Population weights are coarse relative magnitudes used when
sampling synthetic residents; they only need to rank districts plausibly.
"""

from __future__ import annotations

from repro.geo.point import GeoPoint
from repro.geo.region import District, DistrictKind

COUNTRY = "South Korea"

#: STATE-level units that are metropolitan cities (split into districts).
METROPOLITAN_STATES: frozenset[str] = frozenset(
    {"Seoul", "Busan", "Incheon", "Daegu", "Daejeon", "Gwangju", "Ulsan"}
)

#: STATE-level units that are provinces (grouped at -si/-gun level).
PROVINCE_STATES: frozenset[str] = frozenset(
    {
        "Gyeonggi-do",
        "Gangwon-do",
        "Chungcheongbuk-do",
        "Chungcheongnam-do",
        "Jeollabuk-do",
        "Jeollanam-do",
        "Gyeongsangbuk-do",
        "Gyeongsangnam-do",
        "Jeju-do",
    }
)

# (name, state, kind, lat, lon, radius_km, population_weight, extra_aliases)
_GU = DistrictKind.DISTRICT
_SI = DistrictKind.CITY
_GUN = DistrictKind.COUNTY

_ROWS: tuple[tuple[str, str, DistrictKind, float, float, float, float, tuple[str, ...]], ...] = (
    # --- Seoul: all 25 gu -------------------------------------------------
    ("Jongno-gu", "Seoul", _GU, 37.573, 126.979, 3.5, 16.0, ("jongro",)),
    ("Jung-gu", "Seoul", _GU, 37.564, 126.998, 3.0, 13.0, ()),
    ("Yongsan-gu", "Seoul", _GU, 37.532, 126.990, 3.5, 23.0, ()),
    ("Seongdong-gu", "Seoul", _GU, 37.563, 127.037, 3.2, 30.0, ()),
    ("Gwangjin-gu", "Seoul", _GU, 37.538, 127.082, 3.2, 36.0, ()),
    ("Dongdaemun-gu", "Seoul", _GU, 37.574, 127.040, 3.2, 36.0, ()),
    ("Jungnang-gu", "Seoul", _GU, 37.606, 127.093, 3.5, 41.0, ()),
    ("Seongbuk-gu", "Seoul", _GU, 37.589, 127.017, 3.8, 46.0, ()),
    ("Gangbuk-gu", "Seoul", _GU, 37.640, 127.025, 3.5, 33.0, ()),
    ("Dobong-gu", "Seoul", _GU, 37.669, 127.047, 3.5, 35.0, ()),
    ("Nowon-gu", "Seoul", _GU, 37.654, 127.056, 4.0, 59.0, ()),
    ("Eunpyeong-gu", "Seoul", _GU, 37.603, 126.929, 3.8, 49.0, ()),
    ("Seodaemun-gu", "Seoul", _GU, 37.579, 126.937, 3.2, 31.0, ()),
    ("Mapo-gu", "Seoul", _GU, 37.566, 126.902, 3.5, 38.0, ("hongdae",)),
    ("Yangcheon-gu", "Seoul", _GU, 37.517, 126.867, 3.2, 48.0, ("yangchun-gu", "yangchun")),
    ("Gangseo-gu", "Seoul", _GU, 37.551, 126.850, 4.0, 57.0, ()),
    ("Guro-gu", "Seoul", _GU, 37.495, 126.888, 3.5, 42.0, ()),
    ("Geumcheon-gu", "Seoul", _GU, 37.457, 126.895, 3.0, 24.0, ()),
    ("Yeongdeungpo-gu", "Seoul", _GU, 37.526, 126.896, 3.5, 40.0, ("yeouido",)),
    ("Dongjak-gu", "Seoul", _GU, 37.512, 126.940, 3.2, 40.0, ()),
    ("Gwanak-gu", "Seoul", _GU, 37.478, 126.952, 3.8, 52.0, ()),
    ("Seocho-gu", "Seoul", _GU, 37.484, 127.033, 4.2, 43.0, ()),
    ("Gangnam-gu", "Seoul", _GU, 37.517, 127.047, 4.2, 56.0, ("kangnam",)),
    ("Songpa-gu", "Seoul", _GU, 37.515, 127.106, 4.0, 66.0, ("jamsil",)),
    ("Gangdong-gu", "Seoul", _GU, 37.530, 127.124, 3.5, 47.0, ()),
    # --- Busan: 15 gu + 1 gun --------------------------------------------
    ("Jung-gu", "Busan", _GU, 35.106, 129.032, 2.5, 5.0, ("nampo-dong",)),
    ("Seo-gu", "Busan", _GU, 35.098, 129.024, 3.0, 12.0, ()),
    ("Dong-gu", "Busan", _GU, 35.129, 129.045, 2.8, 10.0, ()),
    ("Yeongdo-gu", "Busan", _GU, 35.091, 129.068, 3.0, 13.0, ()),
    ("Busanjin-gu", "Busan", _GU, 35.163, 129.053, 3.5, 39.0, ("seomyeon",)),
    ("Dongnae-gu", "Busan", _GU, 35.205, 129.084, 3.2, 28.0, ()),
    ("Nam-gu", "Busan", _GU, 35.137, 129.084, 3.2, 29.0, ()),
    ("Buk-gu", "Busan", _GU, 35.197, 128.990, 3.5, 31.0, ()),
    ("Haeundae-gu", "Busan", _GU, 35.163, 129.164, 4.0, 42.0, ("haeundae",)),
    ("Saha-gu", "Busan", _GU, 35.104, 128.975, 3.8, 35.0, ()),
    ("Geumjeong-gu", "Busan", _GU, 35.243, 129.092, 3.8, 25.0, ()),
    ("Gangseo-gu", "Busan", _GU, 35.212, 128.981, 4.5, 7.0, ()),
    ("Yeonje-gu", "Busan", _GU, 35.176, 129.080, 2.8, 21.0, ()),
    ("Suyeong-gu", "Busan", _GU, 35.146, 129.113, 2.8, 18.0, ("gwangalli",)),
    ("Sasang-gu", "Busan", _GU, 35.152, 128.991, 3.5, 24.0, ()),
    ("Gijang-gun", "Busan", _GUN, 35.245, 129.222, 6.0, 11.0, ()),
    # --- Incheon: 8 gu + 2 gun -------------------------------------------
    ("Jung-gu", "Incheon", _GU, 37.474, 126.621, 4.0, 10.0, ()),
    ("Dong-gu", "Incheon", _GU, 37.474, 126.643, 2.5, 7.0, ()),
    ("Nam-gu", "Incheon", _GU, 37.464, 126.650, 3.2, 41.0, ("michuhol",)),
    ("Yeonsu-gu", "Incheon", _GU, 37.410, 126.678, 3.8, 28.0, ("songdo",)),
    ("Namdong-gu", "Incheon", _GU, 37.447, 126.731, 4.0, 50.0, ()),
    ("Bupyeong-gu", "Incheon", _GU, 37.507, 126.722, 3.5, 55.0, ()),
    ("Gyeyang-gu", "Incheon", _GU, 37.538, 126.738, 3.5, 33.0, ()),
    ("Seo-gu", "Incheon", _GU, 37.545, 126.676, 4.5, 42.0, ()),
    ("Ganghwa-gun", "Incheon", _GUN, 37.747, 126.488, 10.0, 6.0, ()),
    ("Ongjin-gun", "Incheon", _GUN, 37.447, 126.427, 12.0, 2.0, ()),
    # --- Daegu: 7 gu + 1 gun ----------------------------------------------
    ("Jung-gu", "Daegu", _GU, 35.869, 128.606, 2.5, 8.0, ()),
    ("Dong-gu", "Daegu", _GU, 35.887, 128.636, 4.0, 34.0, ()),
    ("Seo-gu", "Daegu", _GU, 35.872, 128.559, 3.0, 23.0, ()),
    ("Nam-gu", "Daegu", _GU, 35.846, 128.597, 2.8, 17.0, ()),
    ("Buk-gu", "Daegu", _GU, 35.886, 128.583, 4.0, 44.0, ()),
    ("Suseong-gu", "Daegu", _GU, 35.858, 128.631, 3.8, 45.0, ()),
    ("Dalseo-gu", "Daegu", _GU, 35.830, 128.533, 4.2, 60.0, ()),
    ("Dalseong-gun", "Daegu", _GUN, 35.775, 128.431, 8.0, 18.0, ()),
    # --- Daejeon: 5 gu ------------------------------------------------------
    ("Dong-gu", "Daejeon", _GU, 36.312, 127.455, 4.0, 25.0, ()),
    ("Jung-gu", "Daejeon", _GU, 36.326, 127.421, 3.5, 26.0, ()),
    ("Seo-gu", "Daejeon", _GU, 36.355, 127.384, 4.0, 50.0, ()),
    ("Yuseong-gu", "Daejeon", _GU, 36.362, 127.356, 4.5, 30.0, ("kaist",)),
    ("Daedeok-gu", "Daejeon", _GU, 36.347, 127.416, 3.5, 21.0, ()),
    # --- Gwangju: 5 gu -----------------------------------------------------
    ("Dong-gu", "Gwangju", _GU, 35.146, 126.923, 3.0, 10.0, ()),
    ("Seo-gu", "Gwangju", _GU, 35.152, 126.890, 3.2, 31.0, ()),
    ("Nam-gu", "Gwangju", _GU, 35.133, 126.902, 3.0, 22.0, ()),
    ("Buk-gu", "Gwangju", _GU, 35.174, 126.912, 4.0, 45.0, ()),
    ("Gwangsan-gu", "Gwangju", _GU, 35.139, 126.794, 4.5, 38.0, ()),
    # --- Ulsan: 4 gu + 1 gun ------------------------------------------------
    ("Jung-gu", "Ulsan", _GU, 35.569, 129.333, 3.0, 24.0, ()),
    ("Nam-gu", "Ulsan", _GU, 35.544, 129.330, 3.5, 35.0, ()),
    ("Dong-gu", "Ulsan", _GU, 35.505, 129.417, 3.0, 18.0, ()),
    ("Buk-gu", "Ulsan", _GU, 35.583, 129.361, 3.5, 19.0, ()),
    ("Ulju-gun", "Ulsan", _GUN, 35.522, 129.243, 9.0, 20.0, ()),
    # --- Gyeonggi-do: cities and counties (2012 boundaries) ----------------
    ("Suwon-si", "Gyeonggi-do", _SI, 37.263, 127.029, 6.0, 110.0, ()),
    ("Seongnam-si", "Gyeonggi-do", _SI, 37.420, 127.127, 6.0, 98.0, ("bundang", "pangyo")),
    ("Uijeongbu-si", "Gyeonggi-do", _SI, 37.738, 127.034, 4.5, 43.0, ()),
    ("Anyang-si", "Gyeonggi-do", _SI, 37.394, 126.957, 4.5, 60.0, ()),
    ("Bucheon-si", "Gyeonggi-do", _SI, 37.503, 126.766, 4.5, 87.0, ()),
    ("Gwangmyeong-si", "Gyeonggi-do", _SI, 37.479, 126.865, 3.5, 35.0, ()),
    ("Pyeongtaek-si", "Gyeonggi-do", _SI, 36.992, 127.113, 7.0, 43.0, ()),
    ("Dongducheon-si", "Gyeonggi-do", _SI, 37.904, 127.060, 4.0, 10.0, ()),
    ("Ansan-si", "Gyeonggi-do", _SI, 37.322, 126.831, 5.5, 71.0, ()),
    ("Goyang-si", "Gyeonggi-do", _SI, 37.658, 126.832, 6.5, 96.0, ("ilsan",)),
    ("Gwacheon-si", "Gyeonggi-do", _SI, 37.429, 126.988, 3.0, 7.0, ()),
    ("Guri-si", "Gyeonggi-do", _SI, 37.594, 127.130, 3.2, 19.0, ()),
    ("Namyangju-si", "Gyeonggi-do", _SI, 37.636, 127.217, 7.0, 56.0, ()),
    ("Osan-si", "Gyeonggi-do", _SI, 37.150, 127.077, 3.5, 20.0, ()),
    ("Siheung-si", "Gyeonggi-do", _SI, 37.380, 126.803, 5.0, 41.0, ()),
    ("Gunpo-si", "Gyeonggi-do", _SI, 37.362, 126.935, 3.2, 29.0, ()),
    ("Uiwang-si", "Gyeonggi-do", _SI, 37.345, 126.968, 3.5, 15.0, ()),
    ("Hanam-si", "Gyeonggi-do", _SI, 37.539, 127.215, 3.8, 15.0, ()),
    ("Yongin-si", "Gyeonggi-do", _SI, 37.241, 127.178, 7.5, 89.0, ()),
    ("Paju-si", "Gyeonggi-do", _SI, 37.760, 126.780, 7.0, 37.0, ()),
    ("Icheon-si", "Gyeonggi-do", _SI, 37.272, 127.435, 6.0, 20.0, ()),
    ("Anseong-si", "Gyeonggi-do", _SI, 37.008, 127.280, 6.5, 18.0, ()),
    ("Gimpo-si", "Gyeonggi-do", _SI, 37.615, 126.716, 5.5, 28.0, ()),
    ("Hwaseong-si", "Gyeonggi-do", _SI, 37.200, 126.831, 8.0, 51.0, ("dongtan",)),
    ("Gwangju-si", "Gyeonggi-do", _SI, 37.429, 127.255, 6.0, 26.0, ()),
    ("Yangju-si", "Gyeonggi-do", _SI, 37.785, 127.046, 5.5, 20.0, ()),
    ("Pocheon-si", "Gyeonggi-do", _SI, 37.895, 127.200, 7.5, 16.0, ()),
    ("Yeoju-gun", "Gyeonggi-do", _GUN, 37.298, 127.637, 7.0, 11.0, ("yeoju",)),
    ("Gapyeong-gun", "Gyeonggi-do", _GUN, 37.831, 127.510, 9.0, 6.0, ()),
    ("Yangpyeong-gun", "Gyeonggi-do", _GUN, 37.492, 127.488, 9.0, 10.0, ()),
    ("Yeoncheon-gun", "Gyeonggi-do", _GUN, 38.096, 127.075, 9.0, 4.0, ()),
    # --- Gangwon-do ---------------------------------------------------------
    ("Chuncheon-si", "Gangwon-do", _SI, 37.881, 127.730, 6.5, 27.0, ()),
    ("Wonju-si", "Gangwon-do", _SI, 37.342, 127.920, 6.5, 31.0, ()),
    ("Gangneung-si", "Gangwon-do", _SI, 37.752, 128.876, 6.5, 22.0, ()),
    ("Sokcho-si", "Gangwon-do", _SI, 38.207, 128.592, 4.5, 9.0, ()),
    ("Donghae-si", "Gangwon-do", _SI, 37.525, 129.114, 4.5, 9.0, ()),
    ("Taebaek-si", "Gangwon-do", _SI, 37.164, 128.985, 5.5, 5.0, ()),
    ("Samcheok-si", "Gangwon-do", _SI, 37.450, 129.165, 6.5, 7.0, ()),
    ("Hongcheon-gun", "Gangwon-do", _GUN, 37.697, 127.889, 10.0, 7.0, ()),
    ("Hoengseong-gun", "Gangwon-do", _GUN, 37.491, 127.985, 9.0, 5.0, ()),
    ("Pyeongchang-gun", "Gangwon-do", _GUN, 37.371, 128.390, 10.0, 4.0, ()),
    ("Jeongseon-gun", "Gangwon-do", _GUN, 37.380, 128.660, 9.0, 4.0, ()),
    ("Cheorwon-gun", "Gangwon-do", _GUN, 38.147, 127.313, 9.0, 5.0, ()),
    ("Inje-gun", "Gangwon-do", _GUN, 38.069, 128.170, 10.0, 3.0, ()),
    ("Yangyang-gun", "Gangwon-do", _GUN, 38.075, 128.619, 7.5, 3.0, ()),
    ("Yeongwol-gun", "Gangwon-do", _GUN, 37.184, 128.462, 9.0, 4.0, ()),
    # --- Chungcheongbuk-do ---------------------------------------------------
    ("Cheongju-si", "Chungcheongbuk-do", _SI, 36.642, 127.489, 6.0, 67.0, ()),
    ("Chungju-si", "Chungcheongbuk-do", _SI, 36.991, 127.926, 6.5, 21.0, ()),
    ("Jecheon-si", "Chungcheongbuk-do", _SI, 37.132, 128.191, 6.0, 14.0, ()),
    ("Boeun-gun", "Chungcheongbuk-do", _GUN, 36.489, 127.729, 8.0, 3.0, ()),
    ("Okcheon-gun", "Chungcheongbuk-do", _GUN, 36.306, 127.571, 8.0, 5.0, ()),
    ("Yeongdong-gun", "Chungcheongbuk-do", _GUN, 36.175, 127.783, 8.5, 5.0, ()),
    ("Jincheon-gun", "Chungcheongbuk-do", _GUN, 36.855, 127.436, 7.5, 6.0, ()),
    ("Goesan-gun", "Chungcheongbuk-do", _GUN, 36.815, 127.787, 8.5, 4.0, ()),
    ("Eumseong-gun", "Chungcheongbuk-do", _GUN, 36.940, 127.690, 8.0, 8.0, ()),
    ("Danyang-gun", "Chungcheongbuk-do", _GUN, 36.985, 128.365, 8.5, 3.0, ()),
    # --- Chungcheongnam-do ---------------------------------------------------
    ("Cheonan-si", "Chungcheongnam-do", _SI, 36.815, 127.114, 6.0, 57.0, ()),
    ("Asan-si", "Chungcheongnam-do", _SI, 36.790, 127.002, 6.0, 27.0, ()),
    ("Gongju-si", "Chungcheongnam-do", _SI, 36.446, 127.119, 6.5, 11.0, ()),
    ("Seosan-si", "Chungcheongnam-do", _SI, 36.785, 126.450, 6.5, 16.0, ()),
    ("Nonsan-si", "Chungcheongnam-do", _SI, 36.187, 127.099, 6.5, 12.0, ()),
    ("Boryeong-si", "Chungcheongnam-do", _SI, 36.333, 126.613, 6.5, 10.0, ()),
    ("Dangjin-si", "Chungcheongnam-do", _SI, 36.890, 126.646, 7.0, 14.0, ("dangjin-gun",)),
    ("Hongseong-gun", "Chungcheongnam-do", _GUN, 36.601, 126.661, 7.5, 9.0, ()),
    ("Yesan-gun", "Chungcheongnam-do", _GUN, 36.682, 126.845, 7.5, 8.0, ()),
    ("Buyeo-gun", "Chungcheongnam-do", _GUN, 36.276, 126.910, 8.0, 7.0, ()),
    ("Seocheon-gun", "Chungcheongnam-do", _GUN, 36.080, 126.692, 7.5, 5.0, ()),
    ("Taean-gun", "Chungcheongnam-do", _GUN, 36.746, 126.298, 8.0, 6.0, ()),
    ("Geumsan-gun", "Chungcheongnam-do", _GUN, 36.109, 127.488, 8.0, 5.0, ()),
    # --- Jeollabuk-do ---------------------------------------------------------
    ("Jeonju-si", "Jeollabuk-do", _SI, 35.824, 127.148, 5.5, 65.0, ()),
    ("Gunsan-si", "Jeollabuk-do", _SI, 35.968, 126.737, 6.0, 27.0, ()),
    ("Iksan-si", "Jeollabuk-do", _SI, 35.948, 126.958, 6.0, 30.0, ()),
    ("Jeongeup-si", "Jeollabuk-do", _SI, 35.570, 126.856, 6.5, 11.0, ()),
    ("Namwon-si", "Jeollabuk-do", _SI, 35.416, 127.390, 7.0, 8.0, ()),
    ("Gimje-si", "Jeollabuk-do", _SI, 35.804, 126.881, 7.0, 9.0, ()),
    ("Wanju-gun", "Jeollabuk-do", _GUN, 35.905, 127.162, 8.5, 9.0, ()),
    ("Muju-gun", "Jeollabuk-do", _GUN, 36.007, 127.661, 9.0, 2.0, ()),
    ("Sunchang-gun", "Jeollabuk-do", _GUN, 35.374, 127.138, 8.0, 3.0, ()),
    ("Gochang-gun", "Jeollabuk-do", _GUN, 35.436, 126.702, 8.0, 6.0, ()),
    ("Buan-gun", "Jeollabuk-do", _GUN, 35.732, 126.733, 8.0, 6.0, ()),
    # --- Jeollanam-do ----------------------------------------------------------
    ("Mokpo-si", "Jeollanam-do", _SI, 34.812, 126.392, 4.5, 24.0, ()),
    ("Yeosu-si", "Jeollanam-do", _SI, 34.760, 127.662, 6.0, 29.0, ()),
    ("Suncheon-si", "Jeollanam-do", _SI, 34.951, 127.487, 6.0, 27.0, ()),
    ("Naju-si", "Jeollanam-do", _SI, 35.016, 126.711, 6.5, 9.0, ()),
    ("Gwangyang-si", "Jeollanam-do", _SI, 34.940, 127.696, 6.5, 15.0, ()),
    ("Damyang-gun", "Jeollanam-do", _GUN, 35.321, 126.988, 7.5, 5.0, ()),
    ("Goheung-gun", "Jeollanam-do", _GUN, 34.611, 127.285, 9.0, 7.0, ()),
    ("Boseong-gun", "Jeollanam-do", _GUN, 34.771, 127.080, 8.0, 4.0, ()),
    ("Hwasun-gun", "Jeollanam-do", _GUN, 35.064, 126.986, 8.0, 6.0, ()),
    ("Haenam-gun", "Jeollanam-do", _GUN, 34.573, 126.599, 9.0, 7.0, ()),
    ("Yeongam-gun", "Jeollanam-do", _GUN, 34.800, 126.697, 8.0, 6.0, ()),
    ("Muan-gun", "Jeollanam-do", _GUN, 34.990, 126.481, 8.0, 7.0, ()),
    ("Wando-gun", "Jeollanam-do", _GUN, 34.311, 126.755, 9.0, 5.0, ()),
    ("Jindo-gun", "Jeollanam-do", _GUN, 34.487, 126.263, 9.0, 3.0, ()),
    # --- Gyeongsangbuk-do --------------------------------------------------------
    ("Pohang-si", "Gyeongsangbuk-do", _SI, 36.019, 129.343, 6.5, 52.0, ()),
    ("Gyeongju-si", "Gyeongsangbuk-do", _SI, 35.856, 129.225, 7.5, 26.0, ()),
    ("Gumi-si", "Gyeongsangbuk-do", _SI, 36.120, 128.344, 6.0, 41.0, ()),
    ("Andong-si", "Gyeongsangbuk-do", _SI, 36.568, 128.730, 7.0, 17.0, ()),
    ("Gimcheon-si", "Gyeongsangbuk-do", _SI, 36.140, 128.114, 6.5, 14.0, ()),
    ("Yeongju-si", "Gyeongsangbuk-do", _SI, 36.806, 128.624, 7.0, 11.0, ()),
    ("Yeongcheon-si", "Gyeongsangbuk-do", _SI, 35.973, 128.939, 7.0, 10.0, ()),
    ("Sangju-si", "Gyeongsangbuk-do", _SI, 36.411, 128.159, 7.5, 10.0, ()),
    ("Mungyeong-si", "Gyeongsangbuk-do", _SI, 36.587, 128.187, 7.5, 7.0, ()),
    ("Gyeongsan-si", "Gyeongsangbuk-do", _SI, 35.825, 128.741, 6.0, 24.0, ()),
    ("Uiseong-gun", "Gyeongsangbuk-do", _GUN, 36.353, 128.697, 9.0, 5.0, ()),
    ("Yeongdeok-gun", "Gyeongsangbuk-do", _GUN, 36.415, 129.366, 8.5, 4.0, ()),
    ("Cheongdo-gun", "Gyeongsangbuk-do", _GUN, 35.647, 128.734, 8.0, 4.0, ()),
    ("Seongju-gun", "Gyeongsangbuk-do", _GUN, 35.919, 128.283, 8.0, 4.0, ()),
    ("Chilgok-gun", "Gyeongsangbuk-do", _GUN, 35.996, 128.402, 7.5, 11.0, ()),
    ("Uljin-gun", "Gyeongsangbuk-do", _GUN, 36.993, 129.401, 9.0, 5.0, ()),
    # --- Gyeongsangnam-do ----------------------------------------------------------
    ("Changwon-si", "Gyeongsangnam-do", _SI, 35.228, 128.681, 7.0, 108.0, ("masan", "jinhae")),
    ("Jinju-si", "Gyeongsangnam-do", _SI, 35.180, 128.108, 6.0, 34.0, ()),
    ("Gimhae-si", "Gyeongsangnam-do", _SI, 35.228, 128.889, 6.0, 50.0, ()),
    ("Yangsan-si", "Gyeongsangnam-do", _SI, 35.335, 129.037, 5.5, 26.0, ()),
    ("Tongyeong-si", "Gyeongsangnam-do", _SI, 34.854, 128.433, 5.0, 14.0, ()),
    ("Geoje-si", "Gyeongsangnam-do", _SI, 34.880, 128.621, 6.5, 23.0, ()),
    ("Miryang-si", "Gyeongsangnam-do", _SI, 35.504, 128.747, 7.0, 11.0, ()),
    ("Sacheon-si", "Gyeongsangnam-do", _SI, 35.004, 128.064, 6.5, 11.0, ()),
    ("Haman-gun", "Gyeongsangnam-do", _GUN, 35.272, 128.406, 7.5, 7.0, ()),
    ("Changnyeong-gun", "Gyeongsangnam-do", _GUN, 35.545, 128.492, 8.0, 6.0, ()),
    ("Namhae-gun", "Gyeongsangnam-do", _GUN, 34.838, 127.893, 8.0, 5.0, ()),
    ("Hadong-gun", "Gyeongsangnam-do", _GUN, 35.067, 127.751, 8.5, 5.0, ()),
    ("Geochang-gun", "Gyeongsangnam-do", _GUN, 35.687, 127.909, 8.5, 6.0, ()),
    ("Hapcheon-gun", "Gyeongsangnam-do", _GUN, 35.567, 128.166, 8.5, 5.0, ()),
    # --- Jeju-do ----------------------------------------------------------------------
    ("Jeju-si", "Jeju-do", _SI, 33.500, 126.531, 7.0, 42.0, ("jeju",)),
    ("Seogwipo-si", "Jeju-do", _SI, 33.254, 126.560, 7.0, 16.0, ()),
)


def _derive_aliases(name: str, extra: tuple[str, ...]) -> tuple[str, ...]:
    """Aliases users type in free-text profiles: with and without suffix."""
    lower = name.lower()
    aliases = {lower}
    for suffix in ("-gu", "-si", "-gun"):
        if lower.endswith(suffix):
            aliases.add(lower.removesuffix(suffix))
    aliases.update(a.lower() for a in extra)
    return tuple(sorted(aliases))


def korean_districts() -> tuple[District, ...]:
    """Build the full Korean district list (fresh tuple each call)."""
    return tuple(
        District(
            name=name,
            state=state,
            country=COUNTRY,
            kind=kind,
            center=GeoPoint(lat, lon),
            radius_km=radius_km,
            aliases=_derive_aliases(name, extra),
            population_weight=weight,
        )
        for name, state, kind, lat, lon, radius_km, weight, extra in _ROWS
    )


#: Alternative romanisations of STATE-level names seen in profiles.
STATE_ALIASES: dict[str, str] = {
    "seoul": "Seoul",
    "soul": "Seoul",
    "busan": "Busan",
    "pusan": "Busan",
    "incheon": "Incheon",
    "inchon": "Incheon",
    "daegu": "Daegu",
    "taegu": "Daegu",
    "daejeon": "Daejeon",
    "taejon": "Daejeon",
    "gwangju": "Gwangju",
    "kwangju": "Gwangju",
    "ulsan": "Ulsan",
    "gyeonggi": "Gyeonggi-do",
    "gyeonggi-do": "Gyeonggi-do",
    "kyonggi": "Gyeonggi-do",
    "gangwon": "Gangwon-do",
    "gangwon-do": "Gangwon-do",
    "chungbuk": "Chungcheongbuk-do",
    "chungcheongbuk-do": "Chungcheongbuk-do",
    "chungnam": "Chungcheongnam-do",
    "chungcheongnam-do": "Chungcheongnam-do",
    "jeonbuk": "Jeollabuk-do",
    "jeollabuk-do": "Jeollabuk-do",
    "jeonnam": "Jeollanam-do",
    "jeollanam-do": "Jeollanam-do",
    "gyeongbuk": "Gyeongsangbuk-do",
    "gyeongsangbuk-do": "Gyeongsangbuk-do",
    "gyeongnam": "Gyeongsangnam-do",
    "gyeongsangnam-do": "Gyeongsangnam-do",
    "jeju": "Jeju-do",
    "jeju-do": "Jeju-do",
    "jejudo": "Jeju-do",
}
