"""Extraction of places mentioned in tweet text — the third spatial
attribute.

The paper names three sources of spatial attributes: profile locations,
GPS coordinates, and "the places mentioned in tweet contents", then scopes
itself to the first two (§III-A).  This module implements the third as an
extension: a gazetteer-driven mention extractor, which the extension
experiment (bench ``bench_ext_place_mentions``) correlates against tweet
GPS — Fig. 4's observation that "some tweets mentioned about their current
locations and those are the same places of the GPS coordinates".

Only aliases that resolve to exactly one district are accepted; a bare
"Jung-gu" (six metropolitan cities) names no usable place.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.gazetteer import GazetteerBackend
from repro.geo.region import District
from repro.text.normalize import normalize_text, strip_punctuation
from repro.text.tokenize import ngrams


@dataclass(frozen=True, slots=True)
class PlaceMention:
    """One place mention found in a tweet.

    Attributes:
        district: The uniquely resolved district.
        matched_alias: The alias text that matched.
        token_start: Index of the first matched token.
        token_count: Number of tokens the alias spans.
    """

    district: District
    matched_alias: str
    token_start: int
    token_count: int


class PlaceMentionExtractor:
    """Finds unambiguous gazetteer places mentioned in free text.

    Longest-match-first over token n-grams, mirroring the forward
    geocoder's candidate scan but keeping *all* non-overlapping matches
    instead of resolving a single field.
    """

    def __init__(self, gazetteer: GazetteerBackend, max_ngram: int = 3):
        self._gazetteer = gazetteer
        self._max_ngram = max_ngram

    def extract(self, text: str) -> list[PlaceMention]:
        """All unambiguous, non-overlapping place mentions in ``text``."""
        cleaned = strip_punctuation(normalize_text(text))
        tokens = cleaned.split()
        if not tokens:
            return []
        mentions: list[PlaceMention] = []
        consumed: set[int] = set()
        for n in range(min(self._max_ngram, len(tokens)), 0, -1):
            for start, gram in enumerate(ngrams(tokens, n)):
                span = set(range(start, start + n))
                if span & consumed:
                    continue
                alias = " ".join(gram)
                hits = self._gazetteer.lookup_alias(alias)
                if len(hits) != 1:
                    continue  # unknown or ambiguous
                mentions.append(
                    PlaceMention(
                        district=hits[0],
                        matched_alias=alias,
                        token_start=start,
                        token_count=n,
                    )
                )
                consumed |= span
        mentions.sort(key=lambda m: m.token_start)
        return mentions

    def first(self, text: str) -> PlaceMention | None:
        """The first mention in ``text``, or ``None``."""
        mentions = self.extract(text)
        return mentions[0] if mentions else None
