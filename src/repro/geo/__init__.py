"""Geographic substrate: points, districts, gazetteers, and geocoding.

Public surface of :mod:`repro.geo`:

* :class:`GeoPoint` plus great-circle helpers (:func:`haversine_km`, ...)
* :class:`District`, :class:`AdminPath`, :class:`BoundingBox` region model
* :class:`Gazetteer` with Korean / world / combined factory catalogues
* :class:`ReverseGeocoder` (GPS -> admin path)
* :class:`TextGeocoder` (free text -> district) and its status codes
"""

from repro.geo.forward import (
    ForwardGeocodeResult,
    GeocodeStatus,
    TextGeocoder,
)
from repro.geo.gazetteer import Gazetteer
from repro.geo.mentions import PlaceMention, PlaceMentionExtractor
from repro.geo.point import (
    EARTH_RADIUS_KM,
    GeoPoint,
    centroid,
    destination_point,
    geographic_median,
    haversine_km,
    initial_bearing_deg,
    midpoint,
)
from repro.geo.region import (
    AdminPath,
    BoundingBox,
    District,
    DistrictKind,
    RegionLevel,
)
from repro.geo.reverse import ReverseGeocodeResult, ReverseGeocoder

__all__ = [
    "EARTH_RADIUS_KM",
    "AdminPath",
    "BoundingBox",
    "District",
    "DistrictKind",
    "ForwardGeocodeResult",
    "Gazetteer",
    "GeocodeStatus",
    "GeoPoint",
    "PlaceMention",
    "PlaceMentionExtractor",
    "RegionLevel",
    "ReverseGeocodeResult",
    "ReverseGeocoder",
    "TextGeocoder",
    "centroid",
    "destination_point",
    "geographic_median",
    "haversine_km",
    "initial_bearing_deg",
    "midpoint",
]
