"""Geographic substrate: points, districts, gazetteers, and geocoding.

Public surface of :mod:`repro.geo`:

* :class:`GeoPoint` plus great-circle helpers (:func:`haversine_km`, ...)
* :class:`District`, :class:`AdminPath`, :class:`BoundingBox` region model
* :class:`Gazetteer` with Korean / world / combined factory catalogues,
  the :class:`GazetteerBackend` protocol it implements, and the
  :class:`SpatialGridCore` search algorithm every backend shares
* :class:`BoundaryPolygon` authoritative district outlines
* :class:`ReverseGeocoder` (GPS -> admin path, polygon-first)
* :class:`TextGeocoder` (free text -> district) and its status codes
"""

from repro.geo.forward import (
    ForwardGeocodeResult,
    GeocodeStatus,
    TextGeocoder,
)
from repro.geo.gazetteer import (
    Gazetteer,
    GazetteerBackend,
    SpatialGridCore,
    combined_districts,
)
from repro.geo.mentions import PlaceMention, PlaceMentionExtractor
from repro.geo.polygon import BoundaryPolygon
from repro.geo.point import (
    EARTH_RADIUS_KM,
    GeoPoint,
    centroid,
    destination_point,
    geographic_median,
    haversine_km,
    initial_bearing_deg,
    midpoint,
)
from repro.geo.region import (
    AdminPath,
    BoundingBox,
    District,
    DistrictKind,
    RegionLevel,
)
from repro.geo.reverse import ReverseGeocodeResult, ReverseGeocoder

__all__ = [
    "EARTH_RADIUS_KM",
    "AdminPath",
    "BoundaryPolygon",
    "BoundingBox",
    "District",
    "DistrictKind",
    "ForwardGeocodeResult",
    "Gazetteer",
    "GazetteerBackend",
    "GeocodeStatus",
    "GeoPoint",
    "PlaceMention",
    "PlaceMentionExtractor",
    "RegionLevel",
    "ReverseGeocodeResult",
    "ReverseGeocoder",
    "SpatialGridCore",
    "TextGeocoder",
    "centroid",
    "combined_districts",
    "destination_point",
    "geographic_median",
    "haversine_km",
    "initial_bearing_deg",
    "midpoint",
]
