"""The simulated live firehose: a replayable Streaming API connection.

Wraps the corpus behind :class:`~repro.twitter.api.StreamingApi` semantics
— global time order, case-insensitive ``track`` phrase filtering — and
adds the two behaviours a long-lived connection forces collection code to
handle:

* **offsets** — every delivered tweet has a stable position in the
  filtered stream, and :meth:`FirehoseSource.iter_from` can (re)subscribe
  from any offset, which is what checkpoint/resume replays against;
* **disconnects** — a deterministic schedule
  (``disconnect_every``) raises
  :class:`~repro.errors.ServiceUnavailableError` mid-subscription, the
  way the real endpoint dropped connections; the pump reconnects from
  the last delivered offset after an exponential backoff charged to a
  :class:`~repro.twitter.api.VirtualClock` (no real sleeping).

The author directory rides along because the real Streaming API embeds
the user object in every status — downstream profile geocoding needs it.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.errors import ConfigurationError, NotFoundError, ServiceUnavailableError
from repro.storage.userstore import UserStore
from repro.twitter.api import StreamingApi, StreamStats, VirtualClock
from repro.twitter.models import Tweet, TwitterUser

#: Reconnect backoff schedule (seconds, virtual): the documented
#: Streaming-API guidance of exponential backoff capped at 320 s.
BACKOFF_BASE_S = 5.0
BACKOFF_CAP_S = 320.0


@dataclass
class FirehoseStats:
    """Delivery accounting across every subscription to one source.

    Attributes:
        delivered: Tweets handed to the consumer (all subscriptions).
        filtered_out: Firehose tweets the track filter rejected.
        disconnects: Simulated connection drops raised.
        resubscribes: ``iter_from`` calls after the first.
        backoff_s: Virtual seconds spent in reconnect backoff.
    """

    delivered: int = 0
    filtered_out: int = 0
    disconnects: int = 0
    resubscribes: int = 0
    backoff_s: float = 0.0

    def snapshot(self) -> dict[str, float]:
        """Plain-dict view, registrable as a metrics source."""
        return {
            "delivered": self.delivered,
            "filtered_out": self.filtered_out,
            "disconnects": self.disconnects,
            "resubscribes": self.resubscribes,
            "backoff_s": round(self.backoff_s, 3),
        }


class FirehoseSource:
    """A replayable, offset-addressed streaming connection over a corpus.

    Args:
        firehose: The platform's public tweets (any order; replayed in
            global time order, like :class:`StreamingApi`).
        directory: Account directory used to hydrate authors.
        track: Optional keyword filter (empty = deliver everything).
        disconnect_every: Raise a simulated disconnect after this many
            deliveries within one subscription (0 disables).
        clock: Virtual clock backoff time is charged to.

    Raises:
        ConfigurationError: for a negative ``disconnect_every``.
    """

    def __init__(
        self,
        firehose: Iterable[Tweet],
        directory: UserStore,
        track: tuple[str, ...] = (),
        disconnect_every: int = 0,
        clock: VirtualClock | None = None,
    ):
        if disconnect_every < 0:
            raise ConfigurationError(
                f"disconnect_every must be >= 0, got {disconnect_every}"
            )
        delivery_stats = StreamStats()
        self._delivery: list[Tweet] = list(
            StreamingApi(list(firehose)).filter(track=track, stats=delivery_stats)
        )
        self._directory = directory
        self._track = track
        self._disconnect_every = disconnect_every
        self.clock = clock or VirtualClock()
        self.stats = FirehoseStats(filtered_out=delivery_stats.filtered_out)
        self._subscriptions = 0

    # ------------------------------------------------------------------ reads
    def __len__(self) -> int:
        return len(self._delivery)

    @property
    def track(self) -> tuple[str, ...]:
        """The subscription's track keywords (empty = firehose sample)."""
        return self._track

    def user(self, user_id: int) -> TwitterUser:
        """Hydrate a delivered tweet's author from the directory.

        Raises:
            NotFoundError: if the directory does not know the account.
        """
        try:
            return self._directory.get(user_id)
        except NotFoundError:
            raise NotFoundError(
                f"stream delivered a tweet from unknown user {user_id}"
            ) from None

    @property
    def directory(self) -> UserStore:
        """The account directory the stream hydrates authors from."""
        return self._directory

    # ------------------------------------------------------------- subscribe
    def iter_from(self, offset: int) -> Iterator[tuple[int, Tweet]]:
        """(Re)subscribe at ``offset``; yields ``(offset, tweet)`` pairs.

        Offsets index the *filtered* stream, ascending from 0.  A
        subscription that hits the disconnect schedule raises
        :class:`ServiceUnavailableError`; resubscribe from the last
        yielded offset + 1 (see :meth:`reconnect_backoff_s` for the
        backoff contract).

        Raises:
            ConfigurationError: for an offset outside ``[0, len]``.
        """
        if offset < 0 or offset > len(self._delivery):
            raise ConfigurationError(
                f"subscription offset {offset} outside stream [0, {len(self._delivery)}]"
            )
        if self._subscriptions > 0:
            self.stats.resubscribes += 1
        self._subscriptions += 1
        delivered_here = 0
        for position in range(offset, len(self._delivery)):
            yield position, self._delivery[position]
            self.stats.delivered += 1
            delivered_here += 1
            if self._disconnect_every and delivered_here % self._disconnect_every == 0:
                self.stats.disconnects += 1
                raise ServiceUnavailableError(
                    f"simulated stream disconnect at offset {position}"
                )

    def reconnect_backoff_s(self) -> float:
        """Charge one reconnect backoff to the virtual clock.

        Exponential in the number of disconnects so far, capped at
        :data:`BACKOFF_CAP_S`; returns the seconds charged.
        """
        exponent = max(0, self.stats.disconnects - 1)
        backoff = min(BACKOFF_CAP_S, BACKOFF_BASE_S * (2**exponent))
        self.clock.advance(backoff)
        self.stats.backoff_s += backoff
        return backoff
