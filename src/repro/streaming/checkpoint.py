"""Checkpoint log: the stream consumer's durable resume points.

The consumer journals ingested tweets to a write-ahead JSONL tweet log
(:meth:`~repro.storage.tweetstore.TweetStore.append_many`) and then, every
``checkpoint_every`` micro-batches, appends one checkpoint record here:
the source offset it is safe to resubscribe from, how many write-ahead
records that state covers, and a digest of the grouping state so a resume
can *prove* it rebuilt the exact accumulator the crashed process had.

The log shares the tweet store's crash contract: one JSON document per
line, append-only, a torn final line (crash mid-append) is detected and
ignored on load, corruption anywhere else raises.  Records are written
with a single buffered write + flush, so a crash can tear at most the
final record.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import StorageError
from repro.storage.journal import append_journal, read_journal


@dataclass(frozen=True, slots=True)
class Checkpoint:
    """One durable resume point.

    Attributes:
        offset: Source offset to resubscribe from (everything older has
            been folded into state or deliberately dropped).
        wal_records: Complete write-ahead tweet-log records the
            checkpointed state covers; later records are rework.
        batches: Micro-batches folded when the checkpoint was taken.
        ingested: Tweets folded into the accumulator so far.
        digest: ``state_digest`` of the grouper state at this point.
    """

    offset: int
    wal_records: int
    batches: int
    ingested: int
    digest: str

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable dict."""
        return {
            "offset": self.offset,
            "wal_records": self.wal_records,
            "batches": self.batches,
            "ingested": self.ingested,
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Checkpoint":
        """Inverse of :meth:`to_dict`.

        Raises:
            StorageError: for a record missing required fields.
        """
        try:
            return cls(
                offset=int(data["offset"]),  # type: ignore[arg-type]
                wal_records=int(data["wal_records"]),  # type: ignore[arg-type]
                batches=int(data["batches"]),  # type: ignore[arg-type]
                ingested=int(data["ingested"]),  # type: ignore[arg-type]
                digest=str(data["digest"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StorageError(f"malformed checkpoint record: {data!r}") from exc


class CheckpointLog:
    """Append-only JSONL log of :class:`Checkpoint` records.

    Args:
        path: Log file (created on first append).
    """

    def __init__(self, path: str | Path):
        self._path = Path(path)

    @property
    def path(self) -> Path:
        """The log file."""
        return self._path

    # ----------------------------------------------------------------- write
    def append(self, checkpoint: Checkpoint) -> None:
        """Append one checkpoint with a single buffered write + flush."""
        append_journal(self._path, [checkpoint.to_dict()])

    # ------------------------------------------------------------------ read
    def load(self) -> list[Checkpoint]:
        """Every durable checkpoint, oldest first (torn tail dropped).

        A missing log is an empty history, not an error — a stream that
        never reached its first checkpoint resumes from offset 0.  The
        file follows the shared journal contract
        (:func:`repro.storage.journal.read_journal`).

        Raises:
            StorageError: if a non-final line is corrupt.
        """
        return read_journal(
            self._path,
            lambda line: Checkpoint.from_dict(json.loads(line)),
            description="checkpoint",
        )

    def latest(self) -> Checkpoint | None:
        """The newest durable checkpoint (``None`` for no history)."""
        checkpoints = self.load()
        return checkpoints[-1] if checkpoints else None
