"""Streaming ingestion: live firehose → incremental study.

The paper's Lady Gaga dataset came down the Streaming API as a live
firehose; this subpackage reproduces that regime end to end.  A
:class:`~repro.streaming.source.FirehoseSource` replays a corpus with
Streaming-API semantics (track filtering, deterministic disconnects), a
:class:`~repro.streaming.queue.BoundedTweetQueue` applies an explicit
backpressure policy between producer and consumer, and a
:class:`~repro.streaming.consumer.StreamConsumer` folds micro-batches
into the :class:`~repro.analysis.incremental.IncrementalStudyAccumulator`
while journaling to a write-ahead tweet log plus a checkpoint log, so
``repro stream --resume`` can continue after a crash with at most one
micro-batch of rework.  The :class:`~repro.streaming.consumer.StreamPump`
wires it all together under an engine
:class:`~repro.engine.context.RunContext` (per-batch spans, queue/lag/
drop/checkpoint metrics).
"""

from repro.streaming.checkpoint import Checkpoint, CheckpointLog
from repro.streaming.consumer import StreamConfig, StreamConsumer, StreamPump
from repro.streaming.queue import (
    BackpressurePolicy,
    BoundedTweetQueue,
    PutOutcome,
    QueueStats,
)
from repro.streaming.snapshot import StreamSnapshot, state_digest
from repro.streaming.source import FirehoseSource, FirehoseStats

__all__ = [
    "BackpressurePolicy",
    "BoundedTweetQueue",
    "Checkpoint",
    "CheckpointLog",
    "FirehoseSource",
    "FirehoseStats",
    "PutOutcome",
    "QueueStats",
    "StreamConfig",
    "StreamConsumer",
    "StreamPump",
    "StreamSnapshot",
    "state_digest",
]
