"""Bounded ingest queue with explicit backpressure policies.

Between the firehose and the consumer sits one bounded FIFO queue.  What
happens when it fills is a policy decision with very different loss
semantics, so the policy is explicit:

* **BLOCK** — the producer stalls until the consumer drains a batch.  No
  tweet is ever lost; throughput degrades instead (the Streaming API's
  own stall-then-disconnect behaviour, minus the disconnect).
* **DROP_OLDEST** — evict the oldest queued tweet to admit the newest.
  Bounded memory, bounded lag, biased towards fresh data.
* **SHED** — reject the incoming tweet and count it.  Bounded memory,
  preserves queued (older) work, biased against fresh data.

The queue is deterministic and single-threaded — the simulation's
producer and consumer interleave under :class:`~repro.streaming.consumer
.StreamPump` control, so every drop is reproducible from the seed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum

from repro.errors import ConfigurationError
from repro.twitter.models import Tweet


class BackpressurePolicy(Enum):
    """What a full queue does with the next produced tweet."""

    BLOCK = "block"
    DROP_OLDEST = "drop-oldest"
    SHED = "shed"


class PutOutcome(Enum):
    """Result of offering one tweet to the queue."""

    ENQUEUED = "enqueued"
    WOULD_BLOCK = "would-block"
    DROPPED_OLDEST = "dropped-oldest"
    SHED = "shed"


@dataclass
class QueueStats:
    """Counters the queue maintains across its lifetime.

    Attributes:
        enqueued: Tweets admitted to the queue.
        dropped_oldest: Queued tweets evicted by DROP_OLDEST admissions.
        shed: Incoming tweets rejected by the SHED policy.
        block_waits: Producer stalls the BLOCK policy caused.
        high_watermark: Deepest the queue has ever been.
    """

    enqueued: int = 0
    dropped_oldest: int = 0
    shed: int = 0
    block_waits: int = 0
    high_watermark: int = 0

    @property
    def dropped(self) -> int:
        """Total tweets lost to backpressure (evictions + sheds)."""
        return self.dropped_oldest + self.shed

    def snapshot(self) -> dict[str, float]:
        """Plain-dict view, registrable as a metrics source."""
        return {
            "enqueued": self.enqueued,
            "dropped_oldest": self.dropped_oldest,
            "shed": self.shed,
            "dropped": self.dropped,
            "block_waits": self.block_waits,
            "high_watermark": self.high_watermark,
        }


class BoundedTweetQueue:
    """A bounded FIFO of ``(offset, tweet)`` pairs with a loss policy.

    Args:
        capacity: Maximum queued tweets (>= 1).
        policy: What to do with an arrival when full.

    Raises:
        ConfigurationError: for a non-positive capacity.
    """

    def __init__(
        self,
        capacity: int,
        policy: BackpressurePolicy = BackpressurePolicy.BLOCK,
    ):
        if capacity < 1:
            raise ConfigurationError(f"queue capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._policy = policy
        self._items: deque[tuple[int, Tweet]] = deque()
        self.stats = QueueStats()

    # ----------------------------------------------------------------- state
    def __len__(self) -> int:
        return len(self._items)

    @property
    def capacity(self) -> int:
        """Maximum queued tweets."""
        return self._capacity

    @property
    def policy(self) -> BackpressurePolicy:
        """The queue's backpressure policy."""
        return self._policy

    @property
    def head_offset(self) -> int | None:
        """Source offset of the oldest queued tweet (``None`` if empty).

        This is the checkpoint-safe resume point while the queue is
        non-empty: everything older has left the queue (consumed or
        deliberately dropped), everything queued or newer will be
        re-delivered on resume.
        """
        return self._items[0][0] if self._items else None

    def snapshot(self) -> dict[str, float]:
        """Stats plus current depth, for the metrics registry."""
        view = self.stats.snapshot()
        view["depth"] = len(self._items)
        view["capacity"] = self._capacity
        return view

    # ----------------------------------------------------------------- offer
    def offer(self, offset: int, tweet: Tweet) -> PutOutcome:
        """Offer one produced tweet under the queue's policy.

        Returns :data:`PutOutcome.WOULD_BLOCK` (without enqueuing) when
        the queue is full under BLOCK — the caller must drain and retry;
        the other policies always resolve the admission themselves.
        """
        if len(self._items) < self._capacity:
            self._admit(offset, tweet)
            return PutOutcome.ENQUEUED
        if self._policy is BackpressurePolicy.BLOCK:
            self.stats.block_waits += 1
            return PutOutcome.WOULD_BLOCK
        if self._policy is BackpressurePolicy.DROP_OLDEST:
            self._items.popleft()
            self.stats.dropped_oldest += 1
            self._admit(offset, tweet)
            return PutOutcome.DROPPED_OLDEST
        self.stats.shed += 1
        return PutOutcome.SHED

    def _admit(self, offset: int, tweet: Tweet) -> None:
        self._items.append((offset, tweet))
        self.stats.enqueued += 1
        if len(self._items) > self.stats.high_watermark:
            self.stats.high_watermark = len(self._items)

    # ------------------------------------------------------------------ take
    def take_batch(self, limit: int) -> list[tuple[int, Tweet]]:
        """Dequeue up to ``limit`` oldest tweets (possibly empty)."""
        batch: list[tuple[int, Tweet]] = []
        while self._items and len(batch) < limit:
            batch.append(self._items.popleft())
        return batch
