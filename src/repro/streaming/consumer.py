"""Stream consumer and pump: micro-batches, checkpoints, crash recovery.

The write path is **journal-first**: every micro-batch is appended to a
write-ahead tweet log (one buffered write + flush, see
:meth:`~repro.storage.tweetstore.TweetStore.append_many`) *before* it is
folded into the accumulator, and every ``checkpoint_every`` batches a
:class:`~repro.streaming.checkpoint.Checkpoint` records the safe source
offset plus a digest of the grouping state.  A crash therefore loses at
most the batches folded since the last checkpoint (one, at the default
cadence) — :meth:`StreamConsumer.resume` rebuilds the accumulator from
the journal prefix the checkpoint covers, proves the digest matches,
compacts the journal, and hands back the offset to resubscribe from.

:class:`StreamPump` is the deterministic single-threaded scheduler that
interleaves the producer (:class:`~repro.streaming.source.FirehoseSource`)
and the consumer through the bounded queue: the consumer drains one batch
every ``drain_every`` produced tweets (a slow consumer is simulated by a
large ``drain_every``), BLOCK backpressure is resolved by draining in
place, and simulated disconnects reconnect after a virtual-clock backoff.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.analysis.incremental import IncrementalStudyAccumulator
from repro.engine.context import RunContext
from repro.errors import ConfigurationError, ServiceUnavailableError, StorageError
from repro.storage.journal import read_journal
from repro.storage.tweetstore import TweetStore
from repro.streaming.checkpoint import Checkpoint, CheckpointLog
from repro.streaming.queue import BackpressurePolicy, BoundedTweetQueue, PutOutcome
from repro.streaming.snapshot import StreamSnapshot, state_digest
from repro.streaming.source import FirehoseSource
from repro.twitter.models import Tweet


@dataclass(frozen=True)
class StreamConfig:
    """Tunables for one stream run.

    Attributes:
        batch_size: Maximum tweets folded per micro-batch.
        capacity: Bounded queue capacity.
        policy: Backpressure policy when the queue is full.
        drain_every: Produced tweets between consumer drains — the
            producer:consumer speed ratio (1 = consumer keeps up;
            larger values starve the consumer and exercise backpressure).
        checkpoint_every: Micro-batches between durable checkpoints.

    Raises:
        ConfigurationError: for any non-positive field.
    """

    batch_size: int = 256
    capacity: int = 1024
    policy: BackpressurePolicy = BackpressurePolicy.BLOCK
    drain_every: int = 1
    checkpoint_every: int = 1

    def __post_init__(self) -> None:
        for name in ("batch_size", "capacity", "drain_every", "checkpoint_every"):
            value = getattr(self, name)
            if value < 1:
                raise ConfigurationError(f"{name} must be >= 1, got {value}")


def _read_wal(path: Path) -> list[Tweet]:
    """Write-ahead log records in file order, dropping a torn final line.

    One thin wrapper over the shared journal contract
    (:func:`repro.storage.journal.read_journal`).

    Raises:
        StorageError: if a non-final line is corrupt.
    """
    return read_journal(
        path, lambda line: Tweet.from_dict(json.loads(line)), description="record"
    )


class StreamConsumer:
    """Folds micro-batches journal-first and takes durable checkpoints.

    Args:
        accumulator: The incremental study state batches fold into.
        wal_path: Write-ahead tweet log (JSONL, append-only).
        checkpoint_log: Durable checkpoint history.
        checkpoint_every: Micro-batches between checkpoints.

    Raises:
        ConfigurationError: for a non-positive ``checkpoint_every``.
    """

    def __init__(
        self,
        accumulator: IncrementalStudyAccumulator,
        wal_path: str | Path,
        checkpoint_log: CheckpointLog,
        checkpoint_every: int = 1,
    ):
        if checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self._accumulator = accumulator
        self._wal_path = Path(wal_path)
        self._log = checkpoint_log
        self._checkpoint_every = checkpoint_every
        self._journal = TweetStore()  # in-memory mirror of the WAL
        self._batches = 0
        self._folded = 0
        self._observations = 0
        self._checkpoints = 0
        self._last_checkpoint_batch = 0

    # ------------------------------------------------------------------ state
    @property
    def accumulator(self) -> IncrementalStudyAccumulator:
        """The study state this consumer feeds."""
        return self._accumulator

    @property
    def batches(self) -> int:
        """Micro-batches folded across the consumer's lifetime."""
        return self._batches

    @property
    def wal_records(self) -> int:
        """Complete records in the write-ahead log."""
        return len(self._journal)

    @property
    def checkpoint_age(self) -> int:
        """Micro-batches folded since the last durable checkpoint."""
        return self._batches - self._last_checkpoint_batch

    def stats_source(self) -> dict[str, float]:
        """Consumer counters for the metrics registry."""
        return {
            "batches": self._batches,
            "folded": self._folded,
            "observations": self._observations,
            "wal_records": self.wal_records,
            "checkpoints": self._checkpoints,
            "checkpoint_age_batches": self.checkpoint_age,
        }

    # ---------------------------------------------------------------- consume
    def consume(self, items: list[tuple[int, Tweet]], safe_offset: int) -> int:
        """Fold one micro-batch; journal first, then fold, then checkpoint.

        ``safe_offset`` is the source offset a resume may resubscribe
        from once this batch is durable — the pump computes it as the
        oldest offset still in flight.  Returns the observations the
        batch produced.
        """
        tweets = [tweet for _, tweet in items]
        self._journal.append_many(self._wal_path, tweets)
        produced = self._accumulator.fold(tweets)
        self._observations += produced
        self._folded += len(tweets)
        self._batches += 1
        if self.checkpoint_age >= self._checkpoint_every:
            self.checkpoint(safe_offset)
        return produced

    def checkpoint(self, safe_offset: int) -> Checkpoint:
        """Write one durable checkpoint at ``safe_offset`` and return it."""
        record = Checkpoint(
            offset=safe_offset,
            wal_records=self.wal_records,
            batches=self._batches,
            ingested=self._folded,
            digest=state_digest(self._accumulator.grouper),
        )
        self._log.append(record)
        self._checkpoints += 1
        self._last_checkpoint_batch = self._batches
        return record

    # ----------------------------------------------------------------- resume
    @classmethod
    def resume(
        cls,
        accumulator: IncrementalStudyAccumulator,
        wal_path: str | Path,
        checkpoint_log: CheckpointLog,
        checkpoint_every: int = 1,
    ) -> tuple["StreamConsumer", int]:
        """Rebuild a consumer from disk; returns ``(consumer, offset)``.

        With no durable checkpoint the journal is discarded (that work
        replays from offset 0 anyway).  Otherwise the journal prefix the
        checkpoint covers is folded back through ``accumulator``, the
        rebuilt grouping state is *verified* against the checkpoint's
        digest, and the journal is compacted to exactly that prefix —
        dropping the at-most-one-batch of rework past the checkpoint
        plus any torn tail.

        Raises:
            StorageError: if the journal is shorter than the checkpoint
                claims, or the rebuilt state's digest does not match.
        """
        consumer = cls(accumulator, wal_path, checkpoint_log, checkpoint_every)
        latest = checkpoint_log.latest()
        if latest is None:
            consumer._compact([])
            return consumer, 0
        records = _read_wal(consumer._wal_path)
        if len(records) < latest.wal_records:
            raise StorageError(
                f"write-ahead log holds {len(records)} records but the last "
                f"checkpoint covers {latest.wal_records}"
            )
        covered = records[: latest.wal_records]
        accumulator.fold(covered)
        rebuilt = state_digest(accumulator.grouper)
        if rebuilt != latest.digest:
            raise StorageError(
                "rebuilt grouping state does not match the checkpoint digest "
                f"({rebuilt[:12]}… != {latest.digest[:12]}…)"
            )
        consumer._compact(covered)
        consumer._batches = latest.batches
        consumer._folded = latest.ingested
        consumer._checkpoints = 1
        consumer._last_checkpoint_batch = latest.batches
        consumer._observations = accumulator.observations_folded
        return consumer, latest.offset

    def _compact(self, covered: list[Tweet]) -> None:
        """Rewrite the journal to exactly the checkpointed prefix."""
        self._journal = TweetStore()
        for tweet in covered:
            self._journal.insert(tweet)
        self._journal.save(self._wal_path)


class StreamPump:
    """Deterministic scheduler wiring source → queue → consumer.

    Registers the stream's metric sources (``stream.source``,
    ``stream.queue``, ``stream.consumer``, ``stream.groups``,
    ``stream.accumulator``) on the context's registry and opens one
    ``stream.batch`` span per folded micro-batch.

    Args:
        source: The firehose subscription.
        queue: Bounded ingest queue between producer and consumer.
        consumer: The journal-first batch consumer.
        config: Run tunables (batch size, drain cadence, …).
        context: Engine run context; a fresh one is created if omitted.

    Attributes:
        on_batch: Optional zero-argument callback invoked after every
            folded micro-batch (not on empty drains).  This is the live
            pipeline's cadence hook: it fires *between* batches, on the
            pump's own thread, so a callback sees the accumulator
            quiescent and may take arbitrarily long without corrupting
            fold state.  ``None`` (the default) preserves the pure batch
            behaviour.
    """

    def __init__(
        self,
        source: FirehoseSource,
        queue: BoundedTweetQueue,
        consumer: StreamConsumer,
        config: StreamConfig,
        context: RunContext | None = None,
    ):
        self._source = source
        self._queue = queue
        self._consumer = consumer
        self._config = config
        self.on_batch: Callable[[], None] | None = None
        self.context = context or RunContext(dataset_name="stream")
        metrics = self.context.metrics
        metrics.register_source("stream.source", source.stats.snapshot)
        metrics.register_source("stream.queue", queue.snapshot)
        metrics.register_source("stream.consumer", consumer.stats_source)
        metrics.register_source("stream.groups", consumer.accumulator.group_shares)
        metrics.register_source(
            "stream.accumulator", consumer.accumulator.stats_source
        )

    @property
    def consumer(self) -> StreamConsumer:
        """The journal-first consumer this pump drains into (the live
        pipeline reads batch counts and the accumulator off it)."""
        return self._consumer

    # -------------------------------------------------------------------- run
    def run(
        self, start_offset: int = 0, max_batches: int | None = None
    ) -> StreamSnapshot:
        """Pump the stream from ``start_offset``; returns the final snapshot.

        Runs until the source is exhausted (snapshot ``exhausted=True``;
        the queue fully drained and a final checkpoint forced) or until
        ``max_batches`` micro-batches have been folded *this call* —
        the crash/pause hook: the returned snapshot has
        ``exhausted=False``, no forced checkpoint is taken, and in-flight
        work past the last cadenced checkpoint is deliberately left
        volatile so tests and demos can resume from disk.
        """
        batches_at_start = self._consumer.batches

        def paused() -> bool:
            if max_batches is None:
                return False
            return self._consumer.batches - batches_at_start >= max_batches

        next_offset = start_offset
        produced_since_drain = 0
        exhausted = False
        while not exhausted:
            try:
                for position, tweet in self._source.iter_from(next_offset):
                    next_offset = position + 1
                    outcome = self._queue.offer(position, tweet)
                    while outcome is PutOutcome.WOULD_BLOCK:
                        # The tweet at `position` is not admitted yet, so
                        # the safe resume point cannot move past it.
                        self._drain_one(position)
                        if paused():
                            return self._finish(next_offset, exhausted=False)
                        outcome = self._queue.offer(position, tweet)
                    produced_since_drain += 1
                    if produced_since_drain >= self._config.drain_every:
                        produced_since_drain = 0
                        self._drain_one(next_offset)
                        if paused():
                            return self._finish(next_offset, exhausted=False)
                exhausted = True
            except ServiceUnavailableError:
                self._source.reconnect_backoff_s()
        while len(self._queue):
            self._drain_one(next_offset)
            if paused():
                return self._finish(next_offset, exhausted=False)
        self._consumer.checkpoint(next_offset)
        return self._finish(next_offset, exhausted=True)

    def _drain_one(self, pending_offset: int) -> None:
        """Fold one micro-batch off the queue (no-op when empty).

        ``pending_offset`` is the oldest offset not yet admitted to the
        queue; it bounds the checkpoint-safe resume point when the queue
        drains empty.
        """
        items = self._queue.take_batch(self._config.batch_size)
        if not items:
            return
        head = self._queue.head_offset
        safe_offset = head if head is not None else pending_offset
        with self.context.stage("stream.batch") as span:
            span.items_in = len(items)
            span.items_out = self._consumer.consume(items, safe_offset)
        self.context.metrics.counter("stream.batches")
        self._update_gauges(pending_offset)
        if self.on_batch is not None:
            self.on_batch()

    def _update_gauges(self, pending_offset: int) -> None:
        metrics = self.context.metrics
        metrics.gauge("stream.queue.depth", len(self._queue))
        head = self._queue.head_offset
        safe_offset = head if head is not None else pending_offset
        metrics.gauge("stream.consumer.lag", pending_offset - safe_offset)
        metrics.gauge(
            "stream.checkpoint.age_batches", self._consumer.checkpoint_age
        )

    def _finish(self, next_offset: int, exhausted: bool) -> StreamSnapshot:
        self._update_gauges(next_offset)
        accumulator = self._consumer.accumulator
        return StreamSnapshot(
            result=accumulator.snapshot(self.context.dataset_name),
            offset=next_offset,
            batches=self._consumer.batches,
            digest=state_digest(accumulator.grouper),
            exhausted=exhausted,
            context=self.context,
        )
