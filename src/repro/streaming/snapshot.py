"""Stream snapshots and the grouping-state digest checkpoints carry.

A stream run can be asked for its study at any moment; the answer is a
:class:`StreamSnapshot` — the assembled
:class:`~repro.analysis.correlation.StudyResult` plus enough stream
position to say *which* prefix of the firehose it covers.  Snapshots are
cheap: geocode cell outcomes are pure functions of the cell key (see
:mod:`repro.geocode.service`), so assembly reuses fold-time resolutions
— no snapshot-time re-geocode of the retained tweets.  The
:func:`state_digest` hash is what ties a durable
:class:`~repro.streaming.checkpoint.Checkpoint` to the in-memory grouping
state: resume rebuilds the accumulator from the write-ahead log and must
reproduce the digest bit for bit before it is allowed to continue.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.analysis.correlation import StudyResult
from repro.columnar.grouping import ColumnarGrouper
from repro.engine.context import RunContext
from repro.grouping.incremental import IncrementalGrouper


def state_digest(grouper: IncrementalGrouper | ColumnarGrouper) -> str:
    """SHA-256 over the grouper's canonical per-user merge counters.

    Built from the grouper's ``export_counts`` (the record-keyed
    :class:`~repro.grouping.incremental.IncrementalGrouper` and the
    interned :class:`~repro.columnar.grouping.ColumnarGrouper` export
    the identical rendered view) serialised with sorted keys, so the
    digest depends only on *state*, never on arrival order or grouper
    implementation — two accumulators that folded the same tweets in
    different batchings digest identically.
    """
    payload = json.dumps(grouper.export_counts(), sort_keys=True, ensure_ascii=False)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class StreamSnapshot:
    """A study captured at one point in a stream run.

    Attributes:
        result: The full study over every tweet folded so far, assembled
            in batch-canonical order (byte-identical to ``run_study``
            over the same tweets).
        offset: Source offset of the next tweet the run would have
            produced when the snapshot was taken.
        batches: Micro-batches folded across the consumer's lifetime
            (survives resume).
        digest: :func:`state_digest` of the grouping state.
        exhausted: ``True`` when the source was fully drained; ``False``
            for a paused (``max_batches``) run.
        context: The run's engine context — per-batch spans and the
            stream metrics live in ``context.metrics``.
    """

    result: StudyResult
    offset: int
    batches: int
    digest: str
    exhausted: bool
    context: RunContext
