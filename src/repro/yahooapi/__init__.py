"""Simulated Yahoo PlaceFinder API (XML reverse geocoding).

The paper resolved GPS coordinates to administrative districts through the
Yahoo Open API (Fig. 5).  This package reproduces that dependency: the
same XML document shape, a client with cache/quota/latency accounting, and
deterministic transient-failure injection for exercising retry paths.
"""

from repro.yahooapi.client import (
    ERROR_NO_RESULT,
    ClientStats,
    FailurePlan,
    PlaceFinderClient,
)
from repro.yahooapi.xml import (
    PlaceFinderResponse,
    parse_response,
    render_error,
    render_success,
)

__all__ = [
    "ERROR_NO_RESULT",
    "ClientStats",
    "FailurePlan",
    "PlaceFinderClient",
    "PlaceFinderResponse",
    "parse_response",
    "render_error",
    "render_success",
]
