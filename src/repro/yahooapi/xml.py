"""Yahoo PlaceFinder-style XML rendering and parsing.

The paper reverse-geocoded every GPS pair through the Yahoo API (§III-B,
Fig. 5): "The result set in XML format has four elements under the
<location> element; the four elements are <country>, <state>, <county>,
and <town>."  This module renders and parses that response shape so the
collection pipeline exercises the same serialise -> transfer -> parse path
the original study did.

The document layout mirrors Fig. 5:

.. code-block:: xml

    <ResultSet version="1.0">
      <Error>0</Error>
      <ErrorMessage>No error</ErrorMessage>
      <Found>1</Found>
      <Result>
        <quality>87</quality>
        <latitude>37.5326</latitude>
        <longitude>126.9904</longitude>
        <location>
          <country>South Korea</country>
          <state>Seoul</state>
          <county>Yongsan-gu</county>
          <town>Itaewon-dong</town>
        </location>
      </Result>
    </ResultSet>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass

from repro.errors import MalformedResponseError
from repro.geo.point import GeoPoint
from repro.geo.region import AdminPath


@dataclass(frozen=True, slots=True)
class PlaceFinderResponse:
    """Parsed form of a PlaceFinder XML response.

    Attributes:
        error_code: 0 on success; non-zero codes mirror the real API
            (e.g. 100 for "no location found").
        error_message: Human-readable error string.
        found: Number of results (0 or 1 in this emulation).
        quality: Match quality 0-100 (87 = coordinate match).
        point: Echo of the query coordinates, when found.
        path: The administrative path, when found.
    """

    error_code: int
    error_message: str
    found: int
    quality: int = 0
    point: GeoPoint | None = None
    path: AdminPath | None = None

    @property
    def ok(self) -> bool:
        """True for a successful lookup with a result."""
        return self.error_code == 0 and self.found > 0


def render_success(point: GeoPoint, path: AdminPath, quality: int) -> str:
    """Render a successful single-result response document."""
    root = ET.Element("ResultSet", version="1.0")
    ET.SubElement(root, "Error").text = "0"
    ET.SubElement(root, "ErrorMessage").text = "No error"
    ET.SubElement(root, "Found").text = "1"
    result = ET.SubElement(root, "Result")
    ET.SubElement(result, "quality").text = str(quality)
    ET.SubElement(result, "latitude").text = f"{point.lat:.6f}"
    ET.SubElement(result, "longitude").text = f"{point.lon:.6f}"
    location = ET.SubElement(result, "location")
    ET.SubElement(location, "country").text = path.country
    ET.SubElement(location, "state").text = path.state
    ET.SubElement(location, "county").text = path.county
    ET.SubElement(location, "town").text = path.town
    return ET.tostring(root, encoding="unicode")


def render_error(error_code: int, message: str) -> str:
    """Render a no-result / error response document."""
    root = ET.Element("ResultSet", version="1.0")
    ET.SubElement(root, "Error").text = str(error_code)
    ET.SubElement(root, "ErrorMessage").text = message
    ET.SubElement(root, "Found").text = "0"
    return ET.tostring(root, encoding="unicode")


def _required_text(parent: ET.Element, tag: str) -> str:
    node = parent.find(tag)
    if node is None:
        raise MalformedResponseError(f"missing <{tag}> element")
    return node.text or ""


def parse_response(document: str) -> PlaceFinderResponse:
    """Parse a PlaceFinder XML document.

    Raises:
        MalformedResponseError: if the document is not valid XML or is
            missing required elements.
    """
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise MalformedResponseError(f"invalid XML: {exc}") from exc
    if root.tag != "ResultSet":
        raise MalformedResponseError(f"unexpected root element <{root.tag}>")

    try:
        error_code = int(_required_text(root, "Error"))
        found = int(_required_text(root, "Found"))
    except ValueError as exc:
        raise MalformedResponseError("non-numeric Error/Found field") from exc
    error_message = _required_text(root, "ErrorMessage")

    if error_code != 0 or found == 0:
        return PlaceFinderResponse(
            error_code=error_code, error_message=error_message, found=found
        )

    result = root.find("Result")
    if result is None:
        raise MalformedResponseError("Found>0 but no <Result> element")
    location = result.find("location")
    if location is None:
        raise MalformedResponseError("<Result> missing <location> element")
    try:
        quality = int(_required_text(result, "quality"))
        lat = float(_required_text(result, "latitude"))
        lon = float(_required_text(result, "longitude"))
    except ValueError as exc:
        raise MalformedResponseError("non-numeric Result field") from exc

    path = AdminPath(
        country=_required_text(location, "country"),
        state=_required_text(location, "state"),
        county=_required_text(location, "county"),
        town=_required_text(location, "town"),
    )
    return PlaceFinderResponse(
        error_code=0,
        error_message=error_message,
        found=found,
        quality=quality,
        point=GeoPoint(lat, lon),
        path=path,
    )
