"""Simulated Yahoo PlaceFinder client.

Wraps the library's :class:`~repro.geo.reverse.ReverseGeocoder` in the
shape of the remote service the paper called for every GPS-tagged tweet:
requests are serialised to XML, a daily quota is enforced (the real API
capped requests per app id per day), results are cached, latency is
accounted, and transient failures can be injected to exercise retry
logic in the collection pipeline.

The client never sleeps — simulated latency is accumulated in
:class:`ClientStats` so experiments can report "API time" without slowing
the test suite down.

Cache semantics are **order-insensitive**: coordinates quantise to 0.001°
cells and a cache miss is resolved at the cell's *canonical
representative point* (its grid anchor), never at the particular
coordinates that happened to arrive first.  The cached response — and
therefore every answer the client gives — is a pure function of the cell
key, matching the tiered :class:`~repro.geocode.service.GeocodeService`
cell for cell.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import (
    GeocodingError,
    RateLimitExceededError,
    ServiceUnavailableError,
)
from repro.geo.point import GeoPoint
from repro.geo.region import AdminPath
from repro.geo.reverse import ReverseGeocoder
from repro.geocode.policy import FailurePlan, RetryPolicy, resolve_with_retries
from repro.yahooapi.xml import (
    PlaceFinderResponse,
    parse_response,
    render_error,
    render_success,
)

__all__ = [
    "ERROR_NO_RESULT",
    "ClientStats",
    "FailurePlan",  # moved to repro.geocode.policy; re-exported here
    "PlaceFinderClient",
]

#: Error code the real PlaceFinder used for "no result".
ERROR_NO_RESULT = 100


@dataclass
class ClientStats:
    """Usage accounting for a simulated PlaceFinder client.

    Attributes:
        requests: Uncached lookups issued (each consumes quota).
        cache_hits: Lookups served from the response cache.
        failures_injected: Transient 503s the failure plan raised.
        no_result: Error-100 responses (coordinates nobody can resolve).
        retries: Retry attempts :meth:`PlaceFinderClient.resolve_admin_path`
            issued after a transient failure.
        retry_exhausted: Lookups abandoned after the retry budget ran out
            — give-ups, counted separately from genuine ``no_result``
            responses.
        simulated_latency_s: Accumulated virtual API time.
    """

    requests: int = 0
    cache_hits: int = 0
    failures_injected: int = 0
    no_result: int = 0
    retries: int = 0
    retry_exhausted: int = 0
    simulated_latency_s: float = 0.0

    def merge(self, other: "ClientStats") -> None:
        """Fold another client's accounting in (shard-fleet totals).

        Deterministic for the integer counters regardless of merge order;
        the engine merges in shard order anyway so the accumulated float
        latency is reproducible bit for bit too.  This is how the process
        backend's per-worker clients roll up into the ``geocode.workers``
        metrics the run context reports — the run's *canonical*
        ``api_stats`` stay the arithmetic cell-invariant reconstruction.
        """
        self.requests += other.requests
        self.cache_hits += other.cache_hits
        self.failures_injected += other.failures_injected
        self.no_result += other.no_result
        self.retries += other.retries
        self.retry_exhausted += other.retry_exhausted
        self.simulated_latency_s += other.simulated_latency_s

    def snapshot(self) -> dict[str, float]:
        """Plain-dict view for reports."""
        return {
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "failures_injected": self.failures_injected,
            "no_result": self.no_result,
            "retries": self.retries,
            "retry_exhausted": self.retry_exhausted,
            "simulated_latency_s": round(self.simulated_latency_s, 3),
        }


class PlaceFinderClient:
    """Reverse-geocoding client with cache, quota, and failure injection.

    Args:
        geocoder: Backing resolver.
        daily_quota: Maximum uncached lookups before the client raises
            :class:`RateLimitExceededError` (the real API enforced a
            per-day cap; 50 000 was the documented limit).
        latency_s: Simulated per-request latency, accumulated in stats.
        failure_plan: Optional deterministic transient-failure schedule.
        cache_quantum_deg: Coordinates are rounded to this grid for the
            cache key, mirroring how the study deduplicated lookups.
    """

    def __init__(
        self,
        geocoder: ReverseGeocoder,
        daily_quota: int = 50_000,
        latency_s: float = 0.05,
        failure_plan: FailurePlan | None = None,
        cache_quantum_deg: float = 0.001,
    ):
        self._geocoder = geocoder
        self._daily_quota = daily_quota
        self._latency_s = latency_s
        self._failure_plan = failure_plan or FailurePlan()
        self._cache_quantum_deg = cache_quantum_deg
        self._cache: dict[tuple[int, int], str] = {}
        self.stats = ClientStats()

    # ---------------------------------------------------------------- public
    def reverse_geocode_xml(self, point: GeoPoint) -> str:
        """Perform a lookup and return the raw XML document.

        A cache miss resolves the cell's canonical representative point
        (the quantisation-grid anchor), not ``point`` itself — the
        response is a pure function of the cache cell, so arrival order
        can never change what a cell answers.

        Raises:
            RateLimitExceededError: once the daily quota is exhausted.
            ServiceUnavailableError: when the failure plan fires.
        """
        key = self._cache_key(point)
        cached = self._cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached

        if self.stats.requests >= self._daily_quota:
            raise RateLimitExceededError(retry_after_s=86_400.0, message="daily quota reached")
        self.stats.requests += 1
        self.stats.simulated_latency_s += self._latency_s

        if self._failure_plan.should_fail(self.stats.requests):
            self.stats.failures_injected += 1
            raise ServiceUnavailableError("simulated transient 503")

        rep = GeoPoint(key[0] * self._cache_quantum_deg, key[1] * self._cache_quantum_deg)
        try:
            result = self._geocoder.resolve(rep)
        except GeocodingError:
            self.stats.no_result += 1
            document = render_error(ERROR_NO_RESULT, "No result for coordinates")
        else:
            document = render_success(rep, result.path, result.quality)
        self._cache[key] = document
        return document

    def reverse_geocode(self, point: GeoPoint) -> PlaceFinderResponse:
        """Lookup returning the parsed response (XML round-trip included)."""
        return parse_response(self.reverse_geocode_xml(point))

    def resolve_admin_path(
        self, point: GeoPoint, max_retries: int = 2
    ) -> AdminPath | None:
        """Convenience: lookup with retry-on-503, ``None`` when unresolvable.

        This is the call the collection pipeline uses per tweet: transient
        failures are retried up to ``max_retries`` times; a no-result
        response or exhausted retries yield ``None``.  Every retry is
        counted in ``stats.retries``; a lookup abandoned with its retry
        budget spent is counted in ``stats.retry_exhausted`` (distinct
        from ``no_result``, which means the service answered "nowhere").
        Each attempt — including retries — consumes quota, exactly as the
        real 503s did; :class:`RateLimitExceededError` raised mid-retry
        propagates.  The loop itself is the shared service-level policy
        (:func:`~repro.geocode.policy.resolve_with_retries`), so the
        client and the tiered service cannot drift apart.
        """

        def attempt() -> AdminPath | None:
            response = self.reverse_geocode(point)
            return response.path if response.ok else None

        return resolve_with_retries(
            attempt, RetryPolicy(max_retries=max_retries), self.stats
        )

    @property
    def cache_size(self) -> int:
        """Number of distinct cached coordinate cells."""
        return len(self._cache)

    def clear_cache(self) -> None:
        """Drop the response cache (quota accounting is kept)."""
        self._cache.clear()

    # -------------------------------------------------------------- internals
    def _cache_key(self, point: GeoPoint) -> tuple[int, int]:
        q = self._cache_quantum_deg
        return (round(point.lat / q), round(point.lon / q))
