"""Unit tests for the shared lookup policy (failure plans, retries)."""

import pytest

from repro.errors import RateLimitExceededError, ServiceUnavailableError
from repro.geocode import FailurePlan, RetryPolicy, resolve_with_retries


class Counters:
    """Minimal RetryCounters implementation."""

    def __init__(self):
        self.retries = 0
        self.retry_exhausted = 0


class TestFailurePlan:
    def test_disabled_by_default(self):
        plan = FailurePlan()
        assert not any(plan.should_fail(i) for i in range(1, 100))

    def test_every_n_cadence(self):
        plan = FailurePlan(every_n=3)
        fired = [i for i in range(1, 10) if plan.should_fail(i)]
        assert fired == [3, 6, 9]

    def test_reexported_from_client(self):
        from repro.yahooapi.client import FailurePlan as ClientFailurePlan

        assert ClientFailurePlan is FailurePlan


class TestResolveWithRetries:
    def test_success_first_try(self):
        counters = Counters()
        result = resolve_with_retries(lambda: "ok", RetryPolicy(), counters)
        assert result == "ok"
        assert counters.retries == 0
        assert counters.retry_exhausted == 0

    def test_retries_then_succeeds(self):
        counters = Counters()
        attempts = iter([ServiceUnavailableError("503"), ServiceUnavailableError("503")])

        def attempt():
            error = next(attempts, None)
            if error is not None:
                raise error
            return "ok"

        result = resolve_with_retries(attempt, RetryPolicy(max_retries=2), counters)
        assert result == "ok"
        assert counters.retries == 2
        assert counters.retry_exhausted == 0

    def test_budget_exhaustion_returns_none(self):
        counters = Counters()

        def attempt():
            raise ServiceUnavailableError("503")

        result = resolve_with_retries(attempt, RetryPolicy(max_retries=2), counters)
        assert result is None
        assert counters.retries == 2
        assert counters.retry_exhausted == 1

    def test_non_transient_errors_propagate(self):
        counters = Counters()

        def attempt():
            raise RateLimitExceededError(retry_after_s=1.0)

        with pytest.raises(RateLimitExceededError):
            resolve_with_retries(attempt, RetryPolicy(), counters)
        assert counters.retries == 0
