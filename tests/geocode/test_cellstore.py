"""Unit tests for the persistent geocode cell store."""

import json

import pytest

from repro.errors import StorageError
from repro.geo.region import AdminPath
from repro.geocode.cellstore import CellStore

SEOUL = AdminPath(country="South Korea", state="Seoul", county="Mapo-gu")
BUSAN = AdminPath(country="South Korea", state="Busan", county="Jung-gu")


class TestBasics:
    def test_missing_file_is_empty(self, tmp_path):
        store = CellStore(tmp_path / "cells.jsonl")
        assert len(store) == 0
        assert (1, 2) not in store

    def test_put_get_roundtrip(self, tmp_path):
        store = CellStore(tmp_path / "cells.jsonl")
        store.put((37_533, 126_990), SEOUL)
        store.put((35_100, 129_040), None)
        assert store.get((37_533, 126_990)) == SEOUL
        assert store.get((35_100, 129_040)) is None
        assert len(store) == 2

    def test_get_absent_raises(self, tmp_path):
        store = CellStore(tmp_path / "cells.jsonl")
        with pytest.raises(KeyError):
            store.get((0, 0))

    def test_identical_put_does_not_grow_file(self, tmp_path):
        path = tmp_path / "cells.jsonl"
        store = CellStore(path)
        store.put((1, 2), SEOUL)
        size = path.stat().st_size
        store.put((1, 2), SEOUL)
        assert path.stat().st_size == size


class TestPersistence:
    def test_reload_sees_all_cells(self, tmp_path):
        path = tmp_path / "cells.jsonl"
        first = CellStore(path)
        first.put((1, 2), SEOUL)
        first.put((3, 4), None)
        second = CellStore(path)
        assert second.get((1, 2)) == SEOUL
        assert second.get((3, 4)) is None

    def test_last_write_wins_on_reload(self, tmp_path):
        path = tmp_path / "cells.jsonl"
        first = CellStore(path)
        first.put((1, 2), SEOUL)
        first.put((1, 2), BUSAN)
        second = CellStore(path)
        assert second.get((1, 2)) == BUSAN
        assert len(second) == 1

    def test_torn_final_line_dropped(self, tmp_path):
        path = tmp_path / "cells.jsonl"
        store = CellStore(path)
        store.put((1, 2), SEOUL)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"cell": [3, 4], "pa')  # crash mid-append
        recovered = CellStore(path)
        assert len(recovered) == 1
        assert (3, 4) not in recovered

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "cells.jsonl"
        lines = [
            json.dumps({"cell": [1, 2], "path": None}),
            "not json at all",
            json.dumps({"cell": [3, 4], "path": None}),
        ]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(StorageError):
            CellStore(path)
