"""Unit tests for the tiered, order-insensitive GeocodeService."""

import pytest

from repro.errors import ConfigurationError, ServiceUnavailableError
from repro.geo.point import GeoPoint
from repro.geo.region import AdminPath
from repro.geo.reverse import ReverseGeocoder
from repro.geocode import (
    DirectBackend,
    GeocodeService,
    PlaceFinderBackend,
    RetryPolicy,
)
from repro.yahooapi.client import PlaceFinderClient

SEOUL = AdminPath(country="South Korea", state="Seoul", county="Mapo-gu")


class RecordingBackend:
    """Test backend: scripted outcome, optional transient failures."""

    def __init__(self, outcome=SEOUL, fail_times=0):
        self.outcome = outcome
        self.fail_times = fail_times
        self.lookups: list[GeoPoint] = []

    def lookup(self, point: GeoPoint):
        self.lookups.append(point)
        if self.fail_times > 0:
            self.fail_times -= 1
            raise ServiceUnavailableError("injected 503")
        return self.outcome


class TestConfiguration:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            GeocodeService(RecordingBackend(), l1_capacity=0)

    def test_rejects_nonpositive_quantum(self):
        with pytest.raises(ConfigurationError):
            GeocodeService(RecordingBackend(), quantum_deg=0.0)


class TestCanonicalRepresentative:
    def test_representative_maps_back_to_its_cell(self):
        """The grid anchor must re-quantise to the cell it represents —
        the float roundtrip the pure-function contract rests on."""
        service = GeocodeService(RecordingBackend())
        for cell in [(37_533, 126_990), (0, 0), (-33_450, -70_667), (89_999, 179_999)]:
            assert service.cell_of(service.representative(cell)) == cell

    def test_same_cell_resolved_once_at_representative(self):
        backend = RecordingBackend()
        service = GeocodeService(backend)
        a = GeoPoint(37.5330, 126.9901)
        b = GeoPoint(37.5332, 126.9903)  # same 0.001 deg cell
        assert service.cell_of(a) == service.cell_of(b)
        service.resolve(a)
        service.resolve(b)
        assert len(backend.lookups) == 1
        assert backend.lookups[0] == service.representative(service.cell_of(a))

    def test_outcome_independent_of_arrival_order(self, korean_gazetteer):
        points = [
            GeoPoint(37.5326, 126.9904),
            GeoPoint(37.5331, 126.9909),
            GeoPoint(35.1028, 129.0403),
            GeoPoint(37.5326, 126.9904),
        ]
        forward = GeocodeService(DirectBackend(ReverseGeocoder(korean_gazetteer)))
        backward = GeocodeService(DirectBackend(ReverseGeocoder(korean_gazetteer)))
        a = [forward.resolve(p) for p in points]
        b = list(reversed([backward.resolve(p) for p in reversed(points)]))
        assert a == b


class TestTiers:
    def test_l1_hit_counts(self):
        service = GeocodeService(RecordingBackend())
        point = GeoPoint(37.5, 127.0)
        service.resolve(point)
        service.resolve(point)
        assert service.stats.l1_hits == 1
        assert service.stats.l1_misses == 1
        assert service.stats.backend_lookups == 1

    def test_l1_eviction_at_capacity(self):
        backend = RecordingBackend()
        service = GeocodeService(backend, l1_capacity=2)
        cells = [(0, 0), (0, 1), (0, 2)]
        for cell in cells:
            service.resolve_cell(cell)
        assert service.l1_size == 2
        assert service.stats.l1_evictions == 1
        # (0, 0) was evicted: resolving it again reaches the backend.
        before = len(backend.lookups)
        service.resolve_cell((0, 0))
        assert len(backend.lookups) == before + 1

    def test_lru_order_refreshed_on_hit(self):
        service = GeocodeService(RecordingBackend(), l1_capacity=2)
        service.resolve_cell((0, 0))
        service.resolve_cell((0, 1))
        service.resolve_cell((0, 0))  # refresh: (0, 1) is now oldest
        service.resolve_cell((0, 2))  # evicts (0, 1)
        hit, _ = service.lookup_cached((0, 0))
        assert hit
        hit, _ = service.lookup_cached((0, 1))
        assert not hit

    def test_disk_hit_promotes_to_l1(self, tmp_path):
        path = tmp_path / "cells.jsonl"
        warm = GeocodeService(RecordingBackend(), cache_path=path)
        warm.resolve_cell((1, 2))

        backend = RecordingBackend()
        cold = GeocodeService(backend, cache_path=path)
        assert cold.resolve_cell((1, 2)) == SEOUL
        assert backend.lookups == []
        assert cold.stats.disk_hits == 1
        # Promoted: the second lookup is an L1 hit, not another disk hit.
        cold.resolve_cell((1, 2))
        assert cold.stats.l1_hits == 1
        assert cold.stats.disk_hits == 1

    def test_warm_disk_tier_means_zero_backend_lookups(self, tmp_path):
        path = tmp_path / "cells.jsonl"
        first = GeocodeService(RecordingBackend(), cache_path=path)
        cells = [(i, i + 1) for i in range(40)]
        for cell in cells:
            first.resolve_cell(cell)

        backend = RecordingBackend()
        second = GeocodeService(backend, cache_path=path)
        for cell in cells:
            second.resolve_cell(cell)
        assert second.stats.backend_lookups == 0
        assert backend.lookups == []
        assert second.cache_size == len(cells)


class TestOutcomeCaching:
    def test_no_result_is_cached(self):
        backend = RecordingBackend(outcome=None)
        service = GeocodeService(backend)
        assert service.resolve_cell((5, 5)) is None
        assert service.resolve_cell((5, 5)) is None
        assert len(backend.lookups) == 1
        assert service.stats.no_result == 1

    def test_transient_success_after_retry_is_cached(self):
        backend = RecordingBackend(fail_times=1)
        service = GeocodeService(backend, retry_policy=RetryPolicy(max_retries=2))
        assert service.resolve_cell((5, 5)) == SEOUL
        assert service.stats.retries == 1
        assert service.stats.retry_exhausted == 0
        hit, outcome = service.lookup_cached((5, 5))
        assert hit and outcome == SEOUL

    def test_retry_exhaustion_is_not_cached(self):
        backend = RecordingBackend(fail_times=3)  # one full retry budget
        service = GeocodeService(backend, retry_policy=RetryPolicy(max_retries=2))
        assert service.resolve_cell((5, 5)) is None
        assert service.stats.retry_exhausted == 1
        assert service.stats.no_result == 0
        hit, _ = service.lookup_cached((5, 5))
        assert not hit  # a later attempt may still succeed
        assert service.resolve_cell((5, 5)) == SEOUL  # backend recovered


class TestStatsSource:
    def test_includes_occupancy(self, tmp_path):
        service = GeocodeService(
            RecordingBackend(), cache_path=tmp_path / "cells.jsonl"
        )
        service.resolve_cell((1, 2))
        source = service.stats_source()
        assert source["cache_size"] == 1
        assert source["l1_size"] == 1
        assert source["l1"]["misses"] == 1
        assert "client_cache_size" not in source

    def test_exposes_client_cache_size(self, korean_gazetteer):
        client = PlaceFinderClient(ReverseGeocoder(korean_gazetteer), daily_quota=10**9)
        service = GeocodeService(PlaceFinderBackend(client))
        service.resolve(GeoPoint(37.5326, 126.9904))
        source = service.stats_source()
        assert source["client_cache_size"] == client.cache_size == 1
