"""Acceptance tests for warm persistent-tier reuse across study runs.

The issue's contract: a second study run sharing a ``cache_dir`` must
issue **zero** uncached backend lookups (every cell comes off the disk
tier) and still produce a byte-identical :class:`StudyResult`.
"""

import pytest

from repro.analysis.correlation import StudyResult, run_study
from repro.datasets.korean import KoreanDatasetConfig, build_korean_dataset
from repro.engine import EngineConfig, RunContext
from repro.twitter.tweetgen import CollectionWindow


@pytest.fixture(scope="module")
def small_dataset():
    config = KoreanDatasetConfig(
        population_size=300,
        crawl_limit=200,
        window=CollectionWindow(start_ms=1_314_835_200_000, days=8),
        seed=11,
        use_api_timelines=False,
    )
    return build_korean_dataset(config)


def _run(dataset, cache_dir, shards=1, backend="serial"):
    context = RunContext(dataset_name="korean", seed=11)
    study = run_study(
        dataset.users,
        dataset.tweets,
        dataset.gazetteer,
        dataset_name="korean",
        engine_config=EngineConfig(
            shards=shards, backend=backend, cache_dir=str(cache_dir)
        ),
        context=context,
    )
    return study, context.metrics.snapshot()


def assert_results_identical(reference: StudyResult, candidate: StudyResult):
    """Field-by-field identity, including the simulated API accounting."""
    assert candidate.funnel == reference.funnel
    assert candidate.observations == reference.observations
    assert candidate.groupings == reference.groupings
    assert candidate.statistics == reference.statistics
    assert candidate.profile_districts == reference.profile_districts
    assert candidate.api_stats == reference.api_stats


class TestWarmTier:
    def test_second_run_issues_zero_backend_lookups(self, small_dataset, tmp_path):
        cache = tmp_path / "geocache"
        cold_study, cold = _run(small_dataset, cache)
        assert cold["geocode.tiers.backend.lookups"] > 0
        assert (cache / "geocells.jsonl").exists()

        warm_study, warm = _run(small_dataset, cache)
        assert warm["geocode.tiers.backend.lookups"] == 0
        assert warm["geocode.tiers.disk.hits"] > 0
        # The simulated client was never consulted: its request cache is
        # exactly as empty as a freshly constructed client's.
        assert warm["geocode.tiers.client_cache_size"] == 0
        assert_results_identical(cold_study, warm_study)

    def test_cache_populated_by_serial_run_warms_sharded_run(
        self, small_dataset, tmp_path
    ):
        cache = tmp_path / "geocache"
        cold_study, _ = _run(small_dataset, cache, shards=1)
        warm_study, warm = _run(small_dataset, cache, shards=4)
        assert warm["geocode.tiers.backend.lookups"] == 0
        assert_results_identical(cold_study, warm_study)

    def test_process_run_merges_segments_into_shared_cache(
        self, small_dataset, tmp_path
    ):
        """Process workers journal to private ``geocells.shard-<k>.jsonl``
        segments; after the run the parent has folded them into the one
        shared cache (reaping the segments) and a serial run finds the
        disk tier fully warm."""
        cache = tmp_path / "geocache"
        cold_study, cold = _run(small_dataset, cache, shards=4, backend="process")
        assert cold["geocode.tiers.backend.lookups"] > 0
        assert (cache / "geocells.jsonl").exists()
        assert not list(cache.glob("geocells.shard-*.jsonl"))

        warm_study, warm = _run(small_dataset, cache, shards=1)
        assert warm["geocode.tiers.backend.lookups"] == 0
        assert_results_identical(cold_study, warm_study)

    def test_cold_runs_with_and_without_cache_match(self, small_dataset, tmp_path):
        cached_study, _ = _run(small_dataset, tmp_path / "geocache")
        context = RunContext(dataset_name="korean", seed=11)
        plain_study = run_study(
            small_dataset.users,
            small_dataset.tweets,
            small_dataset.gazetteer,
            dataset_name="korean",
            context=context,
        )
        assert_results_identical(plain_study, cached_study)
