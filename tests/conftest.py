"""Shared fixtures for the test suite.

Expensive artefacts (gazetteers, the small-scale experiment context) are
session-scoped; everything else builds fresh per test.
"""

from __future__ import annotations

import pytest

from repro.geo.gazetteer import Gazetteer
from repro.pipelines.experiments import ExperimentContext, get_context


@pytest.fixture(scope="session")
def korean_gazetteer() -> Gazetteer:
    return Gazetteer.korean()


@pytest.fixture(scope="session")
def world_gazetteer() -> Gazetteer:
    return Gazetteer.world()


@pytest.fixture(scope="session")
def combined_gazetteer() -> Gazetteer:
    return Gazetteer.combined()


@pytest.fixture(scope="session")
def small_ctx() -> ExperimentContext:
    """Both datasets + both studies at the test ("small") scale."""
    return get_context("small")
