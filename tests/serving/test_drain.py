"""Draining: refuse new data work while staying observable.

``POST /admin/drain`` flips a replica into a state where data endpoints
answer 503 but the operational surface — ``/healthz``, ``/metrics``,
``/admin/*`` — keeps working, so a fleet front can see the drain and
route around it while the process finishes in-flight work and exits.
Also pins the snapshot-identity satellite: health and metrics expose the
served ``study_digest``, the only version identity that survives
process restarts.
"""

from __future__ import annotations

import json


def _get(app, target: str) -> tuple[int, dict]:
    status, body = app.dispatch("GET", target)
    return status, json.loads(body)


class TestDrain:
    def test_drain_refuses_data_but_keeps_operational_endpoints(self, make_app):
        app = make_app()
        status, body = app.dispatch("POST", "/admin/drain")
        assert status == 200
        assert json.loads(body)["draining"] is True
        assert app.draining

        for target in ("/stats", "/regions", "/lookup?user=1"):
            status, body = _get(app, target)
            assert status == 503, target
            assert "draining" in body["error"]

        status, health = _get(app, "/healthz")
        assert status == 200
        assert health["status"] == "draining"
        assert health["draining"] is True
        status, _ = _get(app, "/metrics")
        assert status == 200

    def test_undrain_restores_service(self, make_app):
        app = make_app()
        app.dispatch("POST", "/admin/drain")
        status, body = app.dispatch("POST", "/admin/undrain")
        assert status == 200
        assert json.loads(body)["draining"] is False
        status, _ = _get(app, "/stats")
        assert status == 200
        status, health = _get(app, "/healthz")
        assert health["status"] == "ok"
        assert health["draining"] is False

    def test_drain_is_idempotent_and_counted(self, make_app):
        app = make_app()
        for _ in range(3):
            status, _ = app.dispatch("POST", "/admin/drain")
            assert status == 200
        assert app.draining
        _get(app, "/stats")
        snapshot = app.metrics.snapshot()
        assert snapshot["serving.drains"] == 1  # transitions, not requests
        assert snapshot["serving.drained"] == 1

    def test_drain_requires_post(self, make_app):
        app = make_app()
        status, body = _get(app, "/admin/drain")
        assert status == 405
        assert not app.draining

    def test_drained_requests_are_not_counted_as_shed(self, make_app):
        """Drain refusals happen before admission: the bucket's shed
        counter stays clean so capacity metrics keep their meaning."""
        app = make_app()
        app.dispatch("POST", "/admin/drain")
        for _ in range(5):
            _get(app, "/stats")
        snapshot = app.metrics.snapshot()
        assert snapshot["serving.drained"] == 5
        assert snapshot.get("serving.shed", 0) == 0


class TestDigestIdentity:
    def test_healthz_exposes_the_study_digest(self, make_app, korean_snapshot):
        app = make_app()
        _, health = _get(app, "/healthz")
        assert health["digest"] == korean_snapshot.digest
        assert health["version"] == korean_snapshot.version

    def test_metrics_expose_the_served_digest(self, make_app, korean_snapshot):
        app = make_app()
        _, body = _get(app, "/metrics")
        metrics = body["metrics"]
        assert metrics["serving.snapshot.digest"] == korean_snapshot.digest
        assert metrics["serving.snapshot.version"] == korean_snapshot.version

    def test_reload_response_reports_the_new_digest(
        self, make_app, korean_snapshot, ladygaga_snapshot
    ):
        snapshots = {"v2": ladygaga_snapshot}
        app = make_app(snapshot_loader=snapshots.__getitem__)
        status, body = app.dispatch("POST", "/admin/reload?snapshot=v2")
        assert status == 200
        parsed = json.loads(body)
        assert parsed["digest"] == ladygaga_snapshot.digest
        assert parsed["changed"] is True
        _, health = _get(app, "/healthz")
        assert health["digest"] == ladygaga_snapshot.digest
