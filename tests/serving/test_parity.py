"""Cross-server parity: the threaded and asyncio front doors are
byte-identical observationally.

Both servers mount the same ``ServingApp.dispatch``, so equal bodies are
structural, not coincidental — these tests pin the property anyway, at
the wire: identical request sequences driven through a real
:class:`StudyServer` and a real :class:`AsyncStudyServer` must produce
byte-identical ``(status, body)`` pairs on both seed datasets, and under
concurrent hot-swaps every response must be byte-identical to what *one*
of the two live snapshot versions answers (the PR 5 allowed-set check,
generalised across transports).

``/metrics`` is excluded from byte comparison (latency percentiles are
inherently timing-dependent) and asserted shape-only; ``/healthz`` is
included by freezing the snapshot stores' clocks so ``age_seconds`` is
deterministic.
"""

from __future__ import annotations

import threading

import pytest

from repro.geo.reverse import ReverseGeocoder
from repro.geocode.backend import DirectBackend
from repro.geocode.service import GeocodeService
from repro.serving import (
    AsyncServerThread,
    ServingApp,
    ServingSnapshot,
    SnapshotStore,
    ThreadedServerHandle,
)
from tests.serving.test_ratelimit import FakeClock
from tests.serving.wire import WireClient


def _study(small_ctx, dataset: str):
    return small_ctx.korean_study if dataset == "korean" else small_ctx.ladygaga_study


def _gazetteer(small_ctx, dataset: str):
    dataset_obj = (
        small_ctx.korean_dataset if dataset == "korean" else small_ctx.ladygaga_dataset
    )
    return dataset_obj.gazetteer


def _make_app(small_ctx, dataset: str, snapshot: ServingSnapshot) -> ServingApp:
    """A ServingApp over ``snapshot`` with a frozen store clock and a
    fresh geocode service (own L1, own single-flight)."""
    store = SnapshotStore(snapshot, clock=FakeClock())
    geocoder = GeocodeService(
        DirectBackend(ReverseGeocoder(_gazetteer(small_ctx, dataset)))
    )
    return ServingApp(store, geocoder)


def _request_corpus(small_ctx, dataset: str, snapshot: ServingSnapshot):
    """Every endpoint, happy and sad paths: ``(method, target)`` pairs."""
    study = _study(small_ctx, dataset)
    users = sorted(snapshot.users)
    states = sorted(snapshot.regions)
    districts = list(study.profile_districts.values())
    corpus: list[tuple[str, str]] = [
        ("GET", "/"),
        ("GET", "/healthz"),
        ("GET", "/healthz/"),  # trailing-slash normalisation
        ("GET", "/regions"),
        ("GET", "/stats"),
        ("GET", "/lookup"),  # missing param
        ("GET", "/lookup?user=not-a-number"),
        ("GET", "/lookup?user=999999999"),  # unknown user
        ("GET", "/region"),  # missing param
        ("GET", "/region?state=Atlantis"),  # unknown region
        ("GET", "/reverse"),  # missing params
        ("GET", "/reverse?lat=abc&lon=127.0"),
        ("GET", "/reverse?lat=95.0&lon=127.0"),  # out of range
        ("GET", "/nope"),  # 404
        ("POST", "/regions"),  # 405
        ("GET", "/admin/reload"),  # 405 (reload wants POST)
        ("POST", "/admin/reload"),  # 400 (no reloader configured)
    ]
    corpus.extend(("GET", f"/lookup?user={uid}") for uid in users[:3])
    corpus.extend(("GET", f"/region?state={state}") for state in states[:2])
    corpus.extend(
        ("GET", f"/reverse?lat={d.center.lat:.4f}&lon={d.center.lon:.4f}")
        for d in districts[:3]
    )
    return corpus


def _drive(port: int, corpus) -> list[tuple[int, bytes]]:
    """Run the whole corpus down one keep-alive connection, in order."""
    results = []
    with WireClient(port) as client:
        for method, target in corpus:
            client.send(method, target)
            status, _, body = client.read_response()
            results.append((status, body))
    return results


@pytest.mark.parametrize("dataset", ["korean", "ladygaga"])
class TestByteParity:
    def test_servers_answer_byte_identically(self, small_ctx, dataset):
        snapshot = ServingSnapshot.from_study(_study(small_ctx, dataset))
        corpus = _request_corpus(small_ctx, dataset, snapshot)

        reference = _make_app(small_ctx, dataset, snapshot)
        expected = [reference.dispatch(m, t) for m, t in corpus]

        threaded = ThreadedServerHandle(
            _make_app(small_ctx, dataset, snapshot)
        ).start()
        aio = AsyncServerThread(_make_app(small_ctx, dataset, snapshot)).start()
        try:
            got_threaded = _drive(threaded.port, corpus)
            got_aio = _drive(aio.port, corpus)
        finally:
            threaded.shutdown()
            aio.shutdown()

        for (method, target), want, thread_got, aio_got in zip(
            corpus, expected, got_threaded, got_aio
        ):
            assert thread_got == want, f"threaded differs on {method} {target}"
            assert aio_got == want, f"asyncio differs on {method} {target}"

    def test_metrics_endpoint_shape_parity(self, small_ctx, dataset):
        """``/metrics`` bodies are timing-dependent; parity here is
        status + top-level shape, not bytes."""
        import json

        snapshot = ServingSnapshot.from_study(_study(small_ctx, dataset))
        threaded = ThreadedServerHandle(
            _make_app(small_ctx, dataset, snapshot)
        ).start()
        aio = AsyncServerThread(_make_app(small_ctx, dataset, snapshot)).start()
        try:
            bodies = {}
            for name, server in (("threaded", threaded), ("asyncio", aio)):
                with WireClient(server.port) as client:
                    status, body = client.get("/metrics")
                assert status == 200
                bodies[name] = json.loads(body)["metrics"]
        finally:
            threaded.shutdown()
            aio.shutdown()
        for metrics in bodies.values():
            assert metrics["serving.requests"] == 1
            assert metrics["serving.snapshot.generation"] == 1


#: Snapshot-backed endpoints whose bodies are pure functions of the live
#: snapshot — the surface the hot-swap allowed-set property ranges over.
_SWAP_TARGETS_LIMIT = 12

#: Hot-swap pressure: total store swaps performed while clients drive.
_SWAP_COUNT = 40


class TestHotSwapParity:
    def test_responses_under_concurrent_swaps_match_an_allowed_version(
        self, small_ctx, korean_snapshot, ladygaga_snapshot
    ):
        """While both servers' stores hot-swap between the two dataset
        snapshots, every wire response must be byte-identical to the
        dispatch answer of *one* of the two versions — a torn or mixed
        body matches neither."""
        corpus = [
            (m, t)
            for m, t in _request_corpus(small_ctx, "korean", korean_snapshot)
            if m == "GET"
            and not t.startswith("/reverse")  # geocode: not snapshot-backed
            and t not in ("/metrics", "/healthz", "/healthz/")  # generation-dependent
        ][:_SWAP_TARGETS_LIMIT]

        ref_korean = _make_app(small_ctx, "korean", korean_snapshot)
        ref_ladygaga = _make_app(small_ctx, "korean", ladygaga_snapshot)
        allowed = {
            target: {
                ref_korean.dispatch(method, target),
                ref_ladygaga.dispatch(method, target),
            }
            for method, target in corpus
        }

        servers = {
            "threaded": ThreadedServerHandle(
                _make_app(small_ctx, "korean", korean_snapshot)
            ).start(),
            "asyncio": AsyncServerThread(
                _make_app(small_ctx, "korean", korean_snapshot)
            ).start(),
        }
        stop_swapping = threading.Event()

        def swapper():
            flip = [ladygaga_snapshot, korean_snapshot]
            for i in range(_SWAP_COUNT):
                if stop_swapping.is_set():
                    return
                for server in servers.values():
                    server.app.store.swap(flip[i % 2])

        failures: list[str] = []

        def client_worker(name: str, port: int):
            try:
                for _ in range(3):
                    for (method, target), got in zip(corpus, _drive(port, corpus)):
                        if got not in allowed[target]:
                            failures.append(
                                f"{name}: {method} {target} answered a body "
                                "matching neither snapshot version"
                            )
            except Exception as exc:  # surfaced after join
                failures.append(f"{name}: client error: {exc!r}")

        swap_thread = threading.Thread(target=swapper)
        workers = [
            threading.Thread(target=client_worker, args=(name, server.port))
            for name, server in servers.items()
            for _ in range(2)
        ]
        try:
            for worker in workers:
                worker.start()
            swap_thread.start()
            for worker in workers:
                worker.join(timeout=60.0)
            stop_swapping.set()
            swap_thread.join(timeout=10.0)
        finally:
            stop_swapping.set()
            for server in servers.values():
                server.shutdown()
        assert not failures, failures[:5]
