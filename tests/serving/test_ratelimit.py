"""TokenBucket admission control, driven by an injected clock."""

from __future__ import annotations

import pytest

from repro.serving import TokenBucket


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_shed(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3, clock=clock)
        assert [bucket.try_acquire() for _ in range(5)] == [
            True, True, True, False, False,
        ]
        assert bucket.admitted == 3
        assert bucket.shed == 2

    def test_refills_at_the_sustained_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1, clock=clock)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 2/s * 0.5s = 1 token
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
        bucket.try_acquire()
        bucket.try_acquire()
        clock.advance(60.0)  # would be 6000 tokens unclamped
        results = [bucket.try_acquire() for _ in range(4)]
        assert results == [True, True, False, False]

    def test_unlimited_always_admits(self):
        bucket = TokenBucket(rate=None)
        assert all(bucket.try_acquire() for _ in range(100))
        assert bucket.admitted == 100
        assert bucket.shed == 0

    def test_non_positive_rate_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=-5.0)

    def test_burst_clamped_to_at_least_one(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=0, clock=clock)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_snapshot_source_shape(self):
        bucket = TokenBucket(rate=50.0, burst=10)
        bucket.try_acquire()
        source = bucket.snapshot_source()
        assert source == {"admitted": 1, "shed": 0, "rate": 50.0, "burst": 10}

    def test_snapshot_source_unlimited_label(self):
        assert TokenBucket(rate=None).snapshot_source()["rate"] == "unlimited"
