"""Hot-swap under fire: concurrent readers across repeated reloads.

The satellite acceptance test: a thread pool hammers the data endpoints
while the main thread hot-swaps the snapshot back and forth between two
*different* studies.  Every response observed must be byte-identical to
one of the two precomputed canonical responses — i.e. fully consistent
with exactly one snapshot version — and no request may fail with a 5xx.
A torn read (data from one snapshot, version tag from the other) would
produce a byte pattern outside the allowed set and fail loudly.
"""

from __future__ import annotations

import itertools
import json
from concurrent.futures import ThreadPoolExecutor

from repro.serving import ServingApp, SnapshotStore, encode_body
from repro.serving.handlers import (
    handle_lookup,
    handle_regions,
    handle_stats,
)

SWAPS = 40
WORKERS = 8
REQUESTS_PER_WORKER = 150


def test_hot_swap_under_concurrent_readers(
    make_app, korean_snapshot, ladygaga_snapshot
):
    flip = itertools.cycle([ladygaga_snapshot, korean_snapshot])
    app = make_app(reloader=lambda: next(flip))

    # A user that exists in exactly one of the two studies gives the
    # strongest signal: 200 under one snapshot, 404 under the other.
    korean_only = next(
        uid for uid in korean_snapshot.users if uid not in ladygaga_snapshot.users
    )
    targets = [
        f"/lookup?user={korean_only}",
        "/regions",
        "/stats",
    ]
    # The full set of byte patterns any reader may legally observe: each
    # target's canonical response under each of the two snapshots.
    allowed: dict[str, set[bytes]] = {}
    for target in targets:
        patterns = set()
        for snapshot in (korean_snapshot, ladygaga_snapshot):
            if target.startswith("/lookup"):
                _, body = handle_lookup(snapshot, {"user": str(korean_only)})
            elif target == "/regions":
                _, body = handle_regions(snapshot)
            else:
                _, body = handle_stats(snapshot)
            patterns.add(encode_body(body))
        allowed[target] = patterns

    def hammer(worker: int) -> list[str]:
        violations = []
        for i in range(REQUESTS_PER_WORKER):
            target = targets[(worker + i) % len(targets)]
            status, payload = app.dispatch("GET", target)
            if status >= 500:
                violations.append(f"{target}: status {status}")
            elif payload not in allowed[target]:
                violations.append(f"{target}: inconsistent body {payload[:80]!r}")
        return violations

    with ThreadPoolExecutor(max_workers=WORKERS) as pool:
        futures = [pool.submit(hammer, w) for w in range(WORKERS)]
        for _ in range(SWAPS):
            status, _ = app.dispatch("POST", "/admin/reload")
            assert status == 200
        violations = [v for f in futures for v in f.result(timeout=60.0)]

    assert not violations, violations[:10]
    # Every swap was observed by the store even while readers hammered it.
    assert app.store.generation == SWAPS + 1


def test_requests_spanning_a_swap_stay_internally_consistent(
    make_app, korean_snapshot, ladygaga_snapshot
):
    """A single request that grabbed its snapshot before a swap answers
    entirely from that snapshot — the version tag proves which one."""
    app = make_app(reloader=lambda: ladygaga_snapshot)
    user_id = next(iter(korean_snapshot.users))
    before = json.loads(app.dispatch("GET", f"/lookup?user={user_id}")[1])
    app.dispatch("POST", "/admin/reload")
    after = json.loads(app.dispatch("GET", f"/lookup?user={user_id}")[1])
    assert before["version"] == korean_snapshot.version
    # After the swap the same query answers from the new snapshot: either
    # the user exists there (tagged with the new version) or it is a 404
    # carrying the new version — never a mix.
    assert after["version"] == ladygaga_snapshot.version
