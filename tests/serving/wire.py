"""A minimal blocking HTTP/1.1 wire client for server tests.

``urllib`` opens a fresh connection per request and hides the framing,
which is exactly what the front-door tests must *not* do: keep-alive
reuse, pipelining, half-sent requests, and hard resets are the behaviours
under test.  :class:`WireClient` exposes the socket directly — bytes in,
parsed ``(status, body)`` out — so a test controls precisely what crosses
the wire and observes precisely what comes back.
"""

from __future__ import annotations

import socket
import struct


def request_bytes(
    method: str,
    target: str,
    body: bytes | None = None,
    headers: dict[str, str] | None = None,
    version: str = "HTTP/1.1",
) -> bytes:
    """Serialise one request; ``Content-Length`` is added when ``body`` is."""
    lines = [f"{method} {target} {version}"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    if body is not None and not any(
        name.lower() == "content-length" for name in (headers or {})
    ):
        lines.append(f"Content-Length: {len(body)}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + (body or b"")


class WireClient:
    """One raw keep-alive connection to a serving front end."""

    def __init__(self, port: int, host: str = "127.0.0.1", timeout: float = 10.0):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.file = self.sock.makefile("rb")

    # ------------------------------------------------------------------ send
    def send_raw(self, data: bytes) -> None:
        """Put exactly ``data`` on the wire (no framing added)."""
        self.sock.sendall(data)

    def send(
        self,
        method: str,
        target: str,
        body: bytes | None = None,
        headers: dict[str, str] | None = None,
        version: str = "HTTP/1.1",
    ) -> None:
        """Frame and send one request without reading the response."""
        self.send_raw(request_bytes(method, target, body, headers, version))

    # ------------------------------------------------------------------ read
    def read_response(self) -> tuple[int, dict[str, str], bytes]:
        """Read one complete response: ``(status, headers, body)``.

        Raises:
            AssertionError: if the stream ends before a full response —
                the "server dropped the connection" failure mode the
                bug-fix tests assert against.
        """
        status_line = self.file.readline()
        assert status_line, "connection closed before a status line arrived"
        status = int(status_line.split()[1])
        headers: dict[str, str] = {}
        while True:
            line = self.file.readline()
            assert line, "connection closed inside response headers"
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = self.file.read(length)
        assert len(body) == length, "connection closed inside response body"
        return status, headers, body

    def get(self, target: str) -> tuple[int, bytes]:
        """One round trip: send a GET, return ``(status, body)``."""
        self.send("GET", target)
        status, _, body = self.read_response()
        return status, body

    # ----------------------------------------------------------------- close
    def close(self) -> None:
        """Orderly close (FIN): how a polite client ends keep-alive."""
        try:
            self.file.close()
        finally:
            self.sock.close()

    def rst_close(self) -> None:
        """Abortive close (RST): the impolite disconnect servers must absorb.

        The ``makefile`` reader holds a reference to the underlying fd,
        so it must be closed too — otherwise the kernel never sees the
        close and no RST leaves the machine.
        """
        self.sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
        self.file.close()
        self.sock.close()

    def __enter__(self) -> "WireClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
