"""Snapshot construction, content versioning, and the atomic store."""

from __future__ import annotations

import pytest

from repro.analysis.serialization import save_study, study_digest
from repro.serving import ServingSnapshot, SnapshotStore, load_snapshot
from repro.serving.state import VERSION_TAG_LENGTH


class TestServingSnapshot:
    def test_version_is_digest_prefix(self, small_ctx, korean_snapshot):
        digest = study_digest(small_ctx.korean_study)
        assert korean_snapshot.digest == digest
        assert korean_snapshot.version == digest[:VERSION_TAG_LENGTH]
        assert len(korean_snapshot.version) == VERSION_TAG_LENGTH

    def test_equal_studies_share_a_version(self, small_ctx, korean_snapshot):
        again = ServingSnapshot.from_study(small_ctx.korean_study)
        assert again is not korean_snapshot
        assert again.version == korean_snapshot.version
        assert again.users == korean_snapshot.users
        assert again.regions == korean_snapshot.regions

    def test_distinct_studies_get_distinct_versions(
        self, korean_snapshot, ladygaga_snapshot
    ):
        assert korean_snapshot.version != ladygaga_snapshot.version

    def test_every_grouped_user_has_a_record(self, small_ctx, korean_snapshot):
        study = small_ctx.korean_study
        assert set(korean_snapshot.users) == set(study.groupings)
        user_id, grouping = next(iter(study.groupings.items()))
        record = korean_snapshot.user(user_id)
        assert record["group"] == grouping.group.value
        assert record["total_tweets"] == grouping.total_tweets
        assert record["matched_rank"] == grouping.matched_rank
        assert len(record["merged"]) == len(grouping.merged)

    def test_matched_string_present_iff_matched(self, korean_snapshot):
        for record in korean_snapshot.users.values():
            if record["matched_rank"] is None:
                assert record["matched_string"] is None
            else:
                assert record["matched_string"] in record["merged"]

    def test_unknown_user_and_region_return_none(self, korean_snapshot):
        assert korean_snapshot.user(999_999_999) is None
        assert korean_snapshot.region("Atlantis") is None

    def test_regions_cover_profile_states(self, small_ctx, korean_snapshot):
        states = {d.state for d in small_ctx.korean_study.profile_districts.values()}
        assert set(korean_snapshot.regions) == states
        for record in korean_snapshot.regions.values():
            assert record["users"] >= 1
            assert 0.0 <= record["top1_share"] <= 1.0

    def test_overview_summarises_the_study(self, small_ctx, korean_snapshot):
        overview = korean_snapshot.overview()
        assert overview["dataset"] == "Korean"
        assert overview["users"] == small_ctx.korean_study.statistics.total_users
        assert overview["version"] == korean_snapshot.version


class TestLoadSnapshot:
    def test_roundtrip_preserves_the_version(self, small_ctx, tmp_path, korean_snapshot):
        """save -> load -> snapshot carries the same content version, so a
        reload from an unchanged file is observationally a no-op."""
        path = tmp_path / "study.json"
        save_study(small_ctx.korean_study, path)
        loaded = load_snapshot(path, small_ctx.korean_dataset.gazetteer)
        assert loaded.version == korean_snapshot.version
        assert loaded.users == korean_snapshot.users

    def test_missing_file_raises_storage_error(self, small_ctx, tmp_path):
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            load_snapshot(tmp_path / "absent.json", small_ctx.korean_dataset.gazetteer)


class TestSnapshotStore:
    def test_swap_returns_previous_and_bumps_generation(
        self, korean_snapshot, ladygaga_snapshot
    ):
        store = SnapshotStore(korean_snapshot)
        assert store.generation == 1
        assert store.current() is korean_snapshot
        previous = store.swap(ladygaga_snapshot)
        assert previous is korean_snapshot
        assert store.current() is ladygaga_snapshot
        assert store.generation == 2

    def test_snapshot_source_reports_swaps(self, korean_snapshot, ladygaga_snapshot):
        store = SnapshotStore(korean_snapshot)
        store.swap(ladygaga_snapshot)
        store.swap(korean_snapshot)
        source = store.snapshot_source()
        assert source["generation"] == 3
        assert source["swaps"] == 2
        assert source["users"] == korean_snapshot.total_users

    def test_age_seconds_tracks_the_injected_clock(
        self, korean_snapshot, ladygaga_snapshot
    ):
        """Snapshot age is seconds since the last publish — it grows with
        the clock and resets to zero at every swap."""
        clock = _TickClock()
        store = SnapshotStore(korean_snapshot, clock=clock)
        assert store.age_seconds() == 0.0
        clock.advance(41.5)
        assert store.age_seconds() == 41.5
        store.swap(ladygaga_snapshot)
        assert store.age_seconds() == 0.0
        clock.advance(2.25)
        assert store.age_seconds() == 2.25

    def test_snapshot_source_reports_age_seconds(
        self, korean_snapshot, ladygaga_snapshot
    ):
        clock = _TickClock()
        store = SnapshotStore(korean_snapshot, clock=clock)
        clock.advance(7.0005)
        assert store.snapshot_source()["age_seconds"] == 7.0  # rounded, 3 places
        store.swap(ladygaga_snapshot)
        assert store.snapshot_source()["age_seconds"] == 0.0

    def test_age_never_negative(self, korean_snapshot):
        """A clock that jumps backwards must clamp at zero, not report a
        snapshot from the future."""
        clock = _TickClock()
        clock.advance(10.0)
        store = SnapshotStore(korean_snapshot, clock=clock)
        clock.now = 3.0
        assert store.age_seconds() == 0.0
        assert store.snapshot_source()["age_seconds"] == 0.0


class _TickClock:
    """A manually-advanced monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds
