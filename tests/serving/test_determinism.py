"""The acceptance property: responses are pure functions of the snapshot.

For any query, the canonical response bytes depend only on (query,
snapshot version).  Property-tested on both study datasets across the
three regimes the acceptance criteria name:

* **serial** — the same query twice in a row;
* **concurrent** — the same query from many threads at once;
* **hot-swap to an equal snapshot** — a reload that installs a *new
  object* with the *same content version* must not change a single byte.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.reverse import ReverseGeocoder
from repro.geocode.backend import DirectBackend
from repro.geocode.service import GeocodeService
from repro.serving import ServingApp, ServingSnapshot, SnapshotStore

DATASETS = ("korean", "ladygaga")


@pytest.fixture(scope="module")
def apps(small_ctx):
    """One long-lived app per dataset, with a reloader that rebuilds an
    *equal* snapshot (same study → same version, different object)."""
    built = {}
    for name in DATASETS:
        study = getattr(small_ctx, f"{name}_study")
        store = SnapshotStore(ServingSnapshot.from_study(study))
        geocoder = GeocodeService(
            DirectBackend(ReverseGeocoder(small_ctx.korean_dataset.gazetteer))
        )
        built[name] = ServingApp(
            store,
            geocoder,
            reloader=lambda study=study: ServingSnapshot.from_study(study),
        )
    return built


def _query_strategy(app: ServingApp) -> st.SearchStrategy[str]:
    """Targets spanning every data endpoint, valid and invalid."""
    snapshot = app.store.current()
    user_ids = sorted(snapshot.users)
    states = sorted(snapshot.regions) or ["Nowhere"]
    lookups = st.one_of(
        st.sampled_from(user_ids),
        st.integers(min_value=0, max_value=10_000_000),
    ).map(lambda uid: f"/lookup?user={uid}")
    regions = st.one_of(
        st.sampled_from(states),
        st.just("Atlantis"),
    ).map(lambda state: f"/region?state={state}")
    reverse = st.tuples(
        st.floats(min_value=33.0, max_value=39.0),
        st.floats(min_value=125.0, max_value=130.0),
    ).map(lambda ll: f"/reverse?lat={round(ll[0], 3)}&lon={round(ll[1], 3)}")
    fixed = st.sampled_from(["/regions", "/stats", "/"])
    return st.one_of(lookups, regions, reverse, fixed)


@pytest.mark.parametrize("dataset", DATASETS)
@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_serial_and_concurrent_requests_are_byte_identical(apps, dataset, data):
    app = apps[dataset]
    target = data.draw(_query_strategy(app))
    reference = app.dispatch("GET", target)
    assert app.dispatch("GET", target) == reference
    with ThreadPoolExecutor(max_workers=6) as pool:
        results = list(pool.map(lambda _: app.dispatch("GET", target), range(12)))
    assert all(result == reference for result in results), target


@pytest.mark.parametrize("dataset", DATASETS)
@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_hot_swap_to_equal_snapshot_changes_no_bytes(apps, dataset, data):
    app = apps[dataset]
    target = data.draw(_query_strategy(app))
    before_snapshot = app.store.current()
    before = app.dispatch("GET", target)
    status, _ = app.dispatch("POST", "/admin/reload")
    assert status == 200
    # The reload really did install a different object...
    assert app.store.current() is not before_snapshot
    # ...with the same content version, so responses cannot change.
    assert app.store.current().version == before_snapshot.version
    assert app.dispatch("GET", target) == before
