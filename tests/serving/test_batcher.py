"""SingleFlight: duplicate concurrent calls collapse into one execution."""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serving import SingleFlight


def _wait_until(predicate, timeout: float = 5.0) -> None:
    """Poll ``predicate`` until true (tests only; fails loudly on timeout)."""
    deadline = threading.Event()
    import time

    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if predicate():
            return
        deadline.wait(0.002)
    raise AssertionError("condition not reached within timeout")


class TestSerialCalls:
    def test_each_serial_call_executes(self):
        flight = SingleFlight()
        calls = []
        for i in range(3):
            result = flight.do("key", lambda i=i: calls.append(i) or i)
            assert result == i
        assert calls == [0, 1, 2]
        stats = flight.stats()
        assert stats.leaders == 3
        assert stats.followers == 0
        assert flight.in_flight() == 0

    def test_distinct_keys_are_independent(self):
        flight = SingleFlight()
        assert flight.do("a", lambda: 1) == 1
        assert flight.do("b", lambda: 2) == 2
        assert flight.stats().leaders == 2


class TestCoalescing:
    def test_concurrent_duplicates_share_one_execution(self):
        flight = SingleFlight()
        release = threading.Event()
        executions = []

        def slow():
            executions.append(1)
            release.wait(5.0)
            return "shared"

        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = [pool.submit(flight.do, "cell", slow) for _ in range(8)]
            # Wait until the leader is inside `slow` and every other caller
            # is registered as a follower, then let the flight land.
            _wait_until(lambda: flight.stats().followers == 7)
            release.set()
            results = [f.result(timeout=5.0) for f in futures]

        assert results == ["shared"] * 8
        assert executions == [1]
        stats = flight.stats()
        assert stats.leaders == 1
        assert stats.followers == 7
        assert flight.in_flight() == 0

    def test_next_burst_starts_a_fresh_flight(self):
        """Results are not cached across flights — caching is the tier
        cache's job, not the coalescer's."""
        flight = SingleFlight()
        values = iter(["first", "second"])
        assert flight.do("k", lambda: next(values)) == "first"
        assert flight.do("k", lambda: next(values)) == "second"


class TestFailures:
    def test_leader_exception_reaches_every_follower(self):
        flight = SingleFlight()
        release = threading.Event()

        def boom():
            release.wait(5.0)
            raise ValueError("backend down")

        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [pool.submit(flight.do, "cell", boom) for _ in range(4)]
            _wait_until(lambda: flight.stats().followers == 3)
            release.set()
            for future in futures:
                with pytest.raises(ValueError, match="backend down"):
                    future.result(timeout=5.0)

        stats = flight.stats()
        assert stats.failures == 1
        assert flight.in_flight() == 0

    def test_failed_flight_does_not_poison_the_key(self):
        flight = SingleFlight()

        def boom():
            raise RuntimeError("once")

        with pytest.raises(RuntimeError):
            flight.do("k", boom)
        assert flight.do("k", lambda: "recovered") == "recovered"

    def test_stats_as_dict(self):
        flight = SingleFlight()
        flight.do("k", lambda: None)
        assert flight.stats().as_dict() == {
            "leaders": 1,
            "followers": 0,
            "failures": 0,
        }
