"""Pure endpoint handlers: status codes, bodies, and version tagging."""

from __future__ import annotations

from repro.geo.reverse import ReverseGeocoder
from repro.geocode.backend import DirectBackend
from repro.geocode.service import GeocodeService
from repro.serving import (
    handle_healthz,
    handle_lookup,
    handle_overview,
    handle_region,
    handle_regions,
    handle_reverse,
    handle_stats,
)


class TestLookup:
    def test_known_user(self, korean_snapshot):
        user_id = next(iter(korean_snapshot.users))
        status, body = handle_lookup(korean_snapshot, {"user": str(user_id)})
        assert status == 200
        assert body["user_id"] == user_id
        assert body["version"] == korean_snapshot.version
        assert "weight" in body and "merged" in body

    def test_unknown_user_is_404(self, korean_snapshot):
        status, body = handle_lookup(korean_snapshot, {"user": "999999999"})
        assert status == 404
        assert body["version"] == korean_snapshot.version

    def test_missing_and_malformed_user_are_400(self, korean_snapshot):
        assert handle_lookup(korean_snapshot, {})[0] == 400
        assert handle_lookup(korean_snapshot, {"user": "abc"})[0] == 400

    def test_handler_does_not_leak_snapshot_state(self, korean_snapshot):
        """The returned body is a copy: mutating it must not corrupt the
        snapshot for later requests."""
        user_id = next(iter(korean_snapshot.users))
        _, body = handle_lookup(korean_snapshot, {"user": str(user_id)})
        body["group"] = "tampered"
        _, again = handle_lookup(korean_snapshot, {"user": str(user_id)})
        assert again["group"] != "tampered"


class TestRegions:
    def test_known_region(self, korean_snapshot):
        state = next(iter(korean_snapshot.regions))
        status, body = handle_region(korean_snapshot, {"state": state})
        assert status == 200
        assert body["state"] == state
        assert body["version"] == korean_snapshot.version

    def test_unknown_region_is_404(self, korean_snapshot):
        assert handle_region(korean_snapshot, {"state": "Atlantis"})[0] == 404

    def test_missing_state_is_400(self, korean_snapshot):
        assert handle_region(korean_snapshot, {})[0] == 400

    def test_regions_listing_is_sorted(self, korean_snapshot):
        status, body = handle_regions(korean_snapshot)
        assert status == 200
        states = [row["state"] for row in body["regions"]]
        assert states == sorted(states)
        assert len(states) == len(korean_snapshot.regions)


class TestOverviewHealthStats:
    def test_overview(self, korean_snapshot):
        status, body = handle_overview(korean_snapshot)
        assert status == 200
        assert body["dataset"] == korean_snapshot.dataset_name
        assert "reliability" in body

    def test_healthz_reports_generation(self, korean_snapshot):
        status, body = handle_healthz(
            korean_snapshot, generation=7, age_seconds=12.3456
        )
        assert status == 200
        assert body["status"] == "ok"
        assert body["generation"] == 7
        assert body["age_seconds"] == 12.346
        assert body["version"] == korean_snapshot.version

    def test_stats_carries_tables(self, korean_snapshot):
        status, body = handle_stats(korean_snapshot)
        assert status == 200
        assert body["statistics"] == korean_snapshot.statistics
        assert body["funnel"] == korean_snapshot.funnel
        assert body["reliability"] == korean_snapshot.reliability


class TestReverse:
    def _geocoder(self, small_ctx) -> GeocodeService:
        return GeocodeService(
            DirectBackend(ReverseGeocoder(small_ctx.korean_dataset.gazetteer))
        )

    def test_resolves_a_district_center(self, small_ctx, korean_snapshot):
        district = next(iter(small_ctx.korean_study.profile_districts.values()))
        geocoder = self._geocoder(small_ctx)
        status, body = handle_reverse(
            korean_snapshot,
            geocoder,
            {"lat": str(district.center.lat), "lon": str(district.center.lon)},
        )
        assert status == 200
        assert body["resolved"] is True
        assert body["state"] == district.state
        assert body["county"] == district.name
        assert body["cell"] == list(geocoder.cell_of(district.center))

    def test_far_away_point_is_unresolved_not_an_error(
        self, small_ctx, korean_snapshot
    ):
        status, body = handle_reverse(
            korean_snapshot, self._geocoder(small_ctx), {"lat": "0.0", "lon": "0.0"}
        )
        assert status == 200
        assert body["resolved"] is False
        assert "state" not in body

    def test_parameter_validation(self, small_ctx, korean_snapshot):
        geocoder = self._geocoder(small_ctx)
        assert handle_reverse(korean_snapshot, geocoder, {})[0] == 400
        assert handle_reverse(korean_snapshot, geocoder, {"lat": "37.5"})[0] == 400
        assert (
            handle_reverse(korean_snapshot, geocoder, {"lat": "x", "lon": "y"})[0]
            == 400
        )
        assert (
            handle_reverse(
                korean_snapshot, geocoder, {"lat": "91.0", "lon": "0.0"}
            )[0]
            == 400
        )
