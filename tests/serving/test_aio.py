"""AsyncStudyServer: framing, keep-alive, pipelining, error taxonomy,
executor split, and lifecycle."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.geo.reverse import ReverseGeocoder
from repro.geocode.backend import DirectBackend
from repro.geocode.service import GeocodeService
from repro.serving import (
    AsyncServerThread,
    ServingApp,
    SnapshotStore,
    start_background_server,
)
from tests.serving.wire import WireClient, request_bytes


@pytest.fixture
def aio_server(make_app):
    """A running asyncio server over the Korean snapshot; yields the
    harness (its ``app`` attribute carries the metrics)."""
    server = AsyncServerThread(make_app()).start()
    try:
        yield server
    finally:
        server.shutdown()


def _wait_for_counter(app, name: str, minimum: int = 1, timeout: float = 5.0) -> float:
    """Poll a metrics counter until it reaches ``minimum``; returns it."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = app.metrics.snapshot().get(name, 0)
        if value >= minimum:
            return value
        time.sleep(0.01)
    return app.metrics.snapshot().get(name, 0)


class TestKeepAlive:
    def test_sequential_requests_share_a_connection(self, aio_server, korean_snapshot):
        with WireClient(aio_server.port) as client:
            for _ in range(3):
                status, body = client.get("/healthz")
                assert status == 200
                assert json.loads(body)["version"] == korean_snapshot.version

    def test_keep_alive_header_advertised(self, aio_server):
        with WireClient(aio_server.port) as client:
            client.send("GET", "/healthz")
            _, headers, _ = client.read_response()
            assert headers["connection"] == "keep-alive"

    def test_connection_close_is_honoured(self, aio_server):
        with WireClient(aio_server.port) as client:
            client.send("GET", "/healthz", headers={"Connection": "close"})
            status, headers, _ = client.read_response()
            assert status == 200
            assert headers["connection"] == "close"
            assert client.file.read(1) == b""  # server closed after responding

    def test_http10_closes_by_default(self, aio_server):
        with WireClient(aio_server.port) as client:
            client.send("GET", "/healthz", version="HTTP/1.0")
            status, headers, _ = client.read_response()
            assert status == 200
            assert headers["connection"] == "close"
            assert client.file.read(1) == b""

    def test_http10_keep_alive_opt_in(self, aio_server):
        with WireClient(aio_server.port) as client:
            client.send(
                "GET", "/healthz", version="HTTP/1.0",
                headers={"Connection": "keep-alive"},
            )
            status, headers, _ = client.read_response()
            assert status == 200
            assert headers["connection"] == "keep-alive"
            assert client.get("/healthz")[0] == 200  # still open


class TestPipelining:
    def test_pipelined_requests_answer_in_order(self, aio_server, korean_snapshot):
        user_id = next(iter(korean_snapshot.users))
        targets = ["/healthz", f"/lookup?user={user_id}", "/regions", "/stats"]
        with WireClient(aio_server.port) as client:
            client.send_raw(b"".join(request_bytes("GET", t) for t in targets))
            bodies = []
            for _ in targets:
                status, _, body = client.read_response()
                assert status == 200
                bodies.append(json.loads(body))
        assert bodies[0]["status"] == "ok"
        assert bodies[1]["user_id"] == user_id
        assert "regions" in bodies[2]
        assert "statistics" in bodies[3]

    def test_post_body_is_drained_mid_pipeline(self, make_app, ladygaga_snapshot):
        """A POST with a body followed by a pipelined GET: the body bytes
        must not be parsed as the next request line."""
        server = AsyncServerThread(
            make_app(reloader=lambda: ladygaga_snapshot)
        ).start()
        try:
            with WireClient(server.port) as client:
                client.send_raw(
                    request_bytes("POST", "/admin/reload", body=b"stale body bytes")
                    + request_bytes("GET", "/healthz")
                )
                status, _, body = client.read_response()
                assert status == 200
                assert json.loads(body)["current"] == ladygaga_snapshot.version
                status, _, body = client.read_response()
                assert status == 200
                assert json.loads(body)["status"] == "ok"
        finally:
            server.shutdown()


class TestFramingErrors:
    """Unparseable framing answers 400 and closes (not recoverable)."""

    def _expect_400_then_close(self, server, raw: bytes, fragment: str):
        with WireClient(server.port) as client:
            client.send_raw(raw)
            status, headers, body = client.read_response()
            assert status == 400
            assert fragment in json.loads(body)["error"]
            assert headers["connection"] == "close"
            assert client.file.read(1) == b""

    def test_malformed_request_line(self, aio_server):
        self._expect_400_then_close(
            aio_server, b"NONSENSE\r\n\r\n", "malformed request line"
        )

    def test_unsupported_protocol(self, aio_server):
        self._expect_400_then_close(
            aio_server, b"GET / SPDY/3\r\n\r\n", "unsupported protocol"
        )

    def test_malformed_header_line(self, aio_server):
        self._expect_400_then_close(
            aio_server,
            b"GET /healthz HTTP/1.1\r\nno-colon-here\r\n\r\n",
            "malformed header",
        )

    def test_invalid_content_length(self, aio_server):
        self._expect_400_then_close(
            aio_server,
            request_bytes(
                "POST", "/admin/reload", headers={"Content-Length": "banana"}
            ),
            "invalid Content-Length",
        )

    def test_negative_content_length(self, aio_server):
        self._expect_400_then_close(
            aio_server,
            request_bytes(
                "POST", "/admin/reload", headers={"Content-Length": "-5"}
            ),
            "invalid Content-Length",
        )

    def test_transfer_encoding_rejected(self, aio_server):
        self._expect_400_then_close(
            aio_server,
            request_bytes(
                "POST", "/admin/reload",
                headers={"Transfer-Encoding": "chunked"},
            ),
            "Transfer-Encoding",
        )

    def test_oversized_request_line(self, aio_server):
        self._expect_400_then_close(
            aio_server,
            b"GET /" + b"a" * 70_000 + b" HTTP/1.1\r\n\r\n",
            "exceeds",
        )

    def test_header_flood_rejected(self, aio_server):
        flood = b"GET /healthz HTTP/1.1\r\n" + b"".join(
            b"X-H%d: v\r\n" % i for i in range(150)
        ) + b"\r\n"
        self._expect_400_then_close(aio_server, flood, "headers")


class TestDisconnects:
    def test_clean_eof_is_not_a_disconnect(self, aio_server):
        client = WireClient(aio_server.port)
        assert client.get("/healthz")[0] == 200
        client.close()  # polite FIN at a request boundary
        time.sleep(0.2)
        assert (
            aio_server.app.metrics.snapshot().get("serving.client_disconnects", 0)
            == 0
        )

    def test_reset_mid_headers_is_counted(self, aio_server):
        client = WireClient(aio_server.port)
        client.send_raw(b"GET /healthz HTTP/1.1\r\nX-Partial")
        client.rst_close()
        assert _wait_for_counter(aio_server.app, "serving.client_disconnects") >= 1

    def test_eof_mid_body_is_counted(self, aio_server):
        client = WireClient(aio_server.port)
        client.send_raw(
            b"POST /admin/reload HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"
        )
        client.close()  # FIN with 45 body bytes still owed
        assert _wait_for_counter(aio_server.app, "serving.client_disconnects") >= 1


class TestInternalErrors:
    def test_500_keeps_the_pipeline_alive(self, make_app, monkeypatch):
        from repro.serving import http as http_module

        def broken(snapshot):
            raise ValueError("handler bug")

        monkeypatch.setattr(http_module.handlers, "handle_stats", broken)
        app = make_app()
        server = AsyncServerThread(app).start()
        try:
            with WireClient(server.port) as client:
                status, body = client.get("/stats")
                assert status == 500
                assert json.loads(body)["error"].startswith("internal server error")
                status, body = client.get("/healthz")  # same connection survives
                assert status == 200
            assert app.metrics.snapshot()["serving.errors"] == 1
        finally:
            server.shutdown()


class TestExecutorSplit:
    def test_cold_reverse_does_not_stall_the_event_loop(self, small_ctx, korean_snapshot):
        """While a cold ``/reverse`` sits in a slow backend call, a
        concurrent ``/lookup`` on another connection must be answered
        from the event loop immediately."""

        release = threading.Event()

        class GatedBackend:
            """A backend that blocks until the test releases it."""

            def __init__(self, inner):
                self._inner = inner

            def lookup(self, point):
                release.wait(10.0)
                return self._inner.lookup(point)

        geocoder = GeocodeService(
            GatedBackend(
                DirectBackend(ReverseGeocoder(small_ctx.korean_dataset.gazetteer))
            )
        )
        app = ServingApp(SnapshotStore(korean_snapshot), geocoder)
        server = AsyncServerThread(app).start()
        try:
            reverse_client = WireClient(server.port)
            reverse_client.send("GET", "/reverse?lat=37.5&lon=127.0")
            time.sleep(0.2)  # the reverse dispatch is now parked in the backend

            user_id = next(iter(korean_snapshot.users))
            with WireClient(server.port) as lookup_client:
                start = time.monotonic()
                status, _ = lookup_client.get(f"/lookup?user={user_id}")
                elapsed = time.monotonic() - start
            assert status == 200
            # The lookup never waited for the gated backend: had the cold
            # reverse dispatch run on the event loop, this would be >=
            # the gate's multi-second hold.
            assert elapsed < 2.0

            release.set()
            status, _, body = reverse_client.read_response()
            assert status == 200
            assert json.loads(body)["resolved"] is True
            reverse_client.close()
        finally:
            release.set()
            server.shutdown()


class TestLifecycle:
    def test_port_zero_binds_a_real_port(self, aio_server):
        assert aio_server.port > 0

    def test_shutdown_with_idle_connection_is_prompt(self, make_app):
        server = AsyncServerThread(make_app()).start()
        client = WireClient(server.port)
        assert client.get("/healthz")[0] == 200  # connection now idle
        start = time.monotonic()
        server.shutdown()
        assert time.monotonic() - start < 3.0
        client.close()

    def test_shutdown_is_idempotent(self, make_app):
        server = AsyncServerThread(make_app()).start()
        server.shutdown()
        server.shutdown()

    def test_bind_failure_surfaces_in_start(self, make_app):
        holder = AsyncServerThread(make_app()).start()
        try:
            with pytest.raises(OSError):
                AsyncServerThread(make_app(), port=holder.port).start()
        finally:
            holder.shutdown()

    def test_start_background_server_factory(self, make_app):
        for kind in ("thread", "asyncio"):
            server = start_background_server(make_app(), kind)
            try:
                with WireClient(server.port) as client:
                    assert client.get("/healthz")[0] == 200
            finally:
                server.shutdown()
        with pytest.raises(ValueError):
            start_background_server(make_app(), "gevent")
