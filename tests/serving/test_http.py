"""ServingApp dispatch: routing, admission, metrics, reload, real HTTP."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import StorageError
from repro.serving import StudyServer, TokenBucket, encode_body
from tests.serving.test_ratelimit import FakeClock


def body_of(response: tuple[int, bytes]) -> dict:
    return json.loads(response[1])


class TestRouting:
    def test_all_endpoints_answer(self, make_app, korean_snapshot):
        app = make_app()
        user_id = next(iter(korean_snapshot.users))
        state = next(iter(korean_snapshot.regions))
        for target in (
            "/",
            "/healthz",
            "/metrics",
            "/regions",
            "/stats",
            f"/lookup?user={user_id}",
            f"/region?state={state}",
            "/reverse?lat=37.5&lon=127.0",
        ):
            status, payload = app.dispatch("GET", target)
            assert status == 200, target
            json.loads(payload)  # every body is valid JSON

    def test_unknown_endpoint_is_404(self, make_app):
        status, payload = make_app().dispatch("GET", "/nope")
        assert status == 404
        assert "unknown endpoint" in body_of((status, payload))["error"]

    def test_trailing_slash_is_normalised(self, make_app):
        app = make_app()
        assert app.dispatch("GET", "/healthz/") == app.dispatch("GET", "/healthz")

    def test_non_get_on_data_endpoint_is_405(self, make_app):
        assert make_app().dispatch("POST", "/regions")[0] == 405

    def test_bodies_are_canonical_json(self, make_app):
        """Keys are sorted and UTF-8 is unescaped — the byte-identity
        contract's encoding half."""
        status, payload = make_app().dispatch("GET", "/stats")
        assert payload == encode_body(json.loads(payload))


class TestAdmission:
    def test_data_requests_shed_with_429(self, make_app, korean_snapshot):
        clock = FakeClock()
        app = make_app(bucket=TokenBucket(rate=1.0, burst=2, clock=clock))
        user_id = next(iter(korean_snapshot.users))
        target = f"/lookup?user={user_id}"
        assert app.dispatch("GET", target)[0] == 200
        assert app.dispatch("GET", target)[0] == 200
        status, payload = app.dispatch("GET", target)
        assert status == 429
        assert "rate limited" in body_of((status, payload))["error"]
        assert app.metrics.snapshot()["serving.shed"] == 1

    def test_operational_endpoints_never_shed(self, make_app):
        clock = FakeClock()
        app = make_app(bucket=TokenBucket(rate=1.0, burst=1, clock=clock))
        app.dispatch("GET", "/regions")  # drains the only token
        for target in ("/healthz", "/metrics", "/"):
            assert app.dispatch("GET", target)[0] == 200
        assert app.dispatch("GET", "/regions")[0] == 429

    def test_tokens_refill_after_shedding(self, make_app):
        clock = FakeClock()
        app = make_app(bucket=TokenBucket(rate=10.0, burst=1, clock=clock))
        assert app.dispatch("GET", "/regions")[0] == 200
        assert app.dispatch("GET", "/regions")[0] == 429
        clock.advance(0.1)
        assert app.dispatch("GET", "/regions")[0] == 200


class TestMetrics:
    def test_latency_histograms_per_endpoint(self, make_app, korean_snapshot):
        app = make_app()
        user_id = next(iter(korean_snapshot.users))
        for _ in range(5):
            app.dispatch("GET", f"/lookup?user={user_id}")
        app.dispatch("GET", "/regions")
        metrics = body_of(app.dispatch("GET", "/metrics"))["metrics"]
        assert metrics["serving.latency.lookup.count"] == 5
        assert metrics["serving.latency.regions.count"] == 1
        for quantile in ("p50", "p95", "p99"):
            assert metrics[f"serving.latency.lookup.{quantile}"] >= 0.0
        assert metrics["serving.requests"] >= 6

    def test_flight_and_geocode_sources_registered(self, make_app):
        app = make_app()
        app.dispatch("GET", "/reverse?lat=37.5&lon=127.0")
        metrics = body_of(app.dispatch("GET", "/metrics"))["metrics"]
        assert metrics["serving.flight.leaders"] == 1
        assert metrics["serving.geocode.backend.lookups"] == 1
        assert metrics["serving.snapshot.generation"] == 1

    def test_duplicate_reverse_hits_the_cache_not_the_backend(self, make_app):
        app = make_app()
        for _ in range(4):
            app.dispatch("GET", "/reverse?lat=37.5&lon=127.0")
        metrics = body_of(app.dispatch("GET", "/metrics"))["metrics"]
        assert metrics["serving.geocode.backend.lookups"] == 1
        assert metrics["serving.geocode.l1.hits"] == 3

    def test_snapshot_age_and_generation_surface_everywhere(
        self, small_ctx, korean_snapshot, ladygaga_snapshot
    ):
        """/metrics and /healthz expose snapshot age + generation, driven
        by the store's injected clock so freshness is testable."""
        from repro.geo.reverse import ReverseGeocoder
        from repro.geocode.backend import DirectBackend
        from repro.geocode.service import GeocodeService
        from repro.serving import ServingApp, SnapshotStore

        clock = FakeClock()
        store = SnapshotStore(korean_snapshot, clock=clock)
        geocoder = GeocodeService(
            DirectBackend(ReverseGeocoder(small_ctx.korean_dataset.gazetteer))
        )
        app = ServingApp(store, geocoder)
        clock.advance(30.25)
        metrics = body_of(app.dispatch("GET", "/metrics"))["metrics"]
        assert metrics["serving.snapshot.age_seconds"] == 30.25
        assert metrics["serving.snapshot.generation"] == 1
        health = body_of(app.dispatch("GET", "/healthz"))
        assert health["age_seconds"] == 30.25
        assert health["generation"] == 1
        store.swap(ladygaga_snapshot)
        health = body_of(app.dispatch("GET", "/healthz"))
        assert health["age_seconds"] == 0.0
        assert health["generation"] == 2


class TestReload:
    def test_reload_not_configured_is_400(self, make_app):
        assert make_app().dispatch("POST", "/admin/reload")[0] == 400

    def test_reload_requires_post(self, make_app, korean_snapshot):
        app = make_app(reloader=lambda: korean_snapshot)
        assert app.dispatch("GET", "/admin/reload")[0] == 405

    def test_reload_swaps_the_snapshot(
        self, make_app, korean_snapshot, ladygaga_snapshot
    ):
        app = make_app(reloader=lambda: ladygaga_snapshot)
        status, payload = app.dispatch("POST", "/admin/reload")
        assert status == 200
        body = json.loads(payload)
        assert body["previous"] == korean_snapshot.version
        assert body["current"] == ladygaga_snapshot.version
        assert body["changed"] is True
        assert body["generation"] == 2
        health = body_of(app.dispatch("GET", "/healthz"))
        assert health["version"] == ladygaga_snapshot.version

    def test_reload_to_equal_snapshot_reports_unchanged(
        self, make_app, small_ctx, korean_snapshot
    ):
        from repro.serving import ServingSnapshot

        app = make_app(
            reloader=lambda: ServingSnapshot.from_study(small_ctx.korean_study)
        )
        body = body_of(app.dispatch("POST", "/admin/reload"))
        assert body["changed"] is False
        assert body["current"] == korean_snapshot.version

    def test_failed_reload_keeps_the_old_snapshot(self, make_app, korean_snapshot):
        def broken():
            raise StorageError("study.json is torn")

        app = make_app(reloader=broken)
        status, payload = app.dispatch("POST", "/admin/reload")
        assert status == 500
        assert "study.json is torn" in json.loads(payload)["error"]
        health = body_of(app.dispatch("GET", "/healthz"))
        assert health["version"] == korean_snapshot.version
        assert health["generation"] == 1
        metrics = body_of(app.dispatch("GET", "/metrics"))["metrics"]
        assert metrics["serving.reload_failures"] == 1


class TestHttpServer:
    @pytest.fixture
    def server(self, make_app, korean_snapshot, ladygaga_snapshot):
        app = make_app(reloader=lambda: ladygaga_snapshot)
        server = StudyServer(app, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield server
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)

    def _get(self, server: StudyServer, path: str) -> tuple[int, dict]:
        url = f"http://127.0.0.1:{server.port}{path}"
        try:
            with urllib.request.urlopen(url) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_healthz_and_lookup_over_real_sockets(self, server, korean_snapshot):
        status, body = self._get(server, "/healthz")
        assert status == 200
        assert body["version"] == korean_snapshot.version
        user_id = next(iter(korean_snapshot.users))
        status, body = self._get(server, f"/lookup?user={user_id}")
        assert status == 200
        assert body["user_id"] == user_id

    def test_error_statuses_cross_the_wire(self, server):
        assert self._get(server, "/lookup?user=zzz")[0] == 400
        assert self._get(server, "/nope")[0] == 404

    def test_admin_reload_over_post(self, server, ladygaga_snapshot):
        url = f"http://127.0.0.1:{server.port}/admin/reload"
        request = urllib.request.Request(url, method="POST", data=b"")
        with urllib.request.urlopen(request) as response:
            body = json.loads(response.read())
        assert body["current"] == ladygaga_snapshot.version
        status, health = self._get(server, "/healthz")
        assert health["version"] == ladygaga_snapshot.version


class TestInternalErrors:
    """Unexpected handler exceptions answer 500 instead of tearing the
    connection down (the missing-500 bug)."""

    def test_dispatch_maps_unexpected_exceptions_to_500(self, make_app, monkeypatch):
        from repro.serving import http as http_module

        def broken(snapshot):
            raise ValueError("handler bug")

        monkeypatch.setattr(http_module.handlers, "handle_stats", broken)
        app = make_app()
        status, payload = app.dispatch("GET", "/stats")
        assert status == 500
        body = json.loads(payload)
        assert body == {"error": "internal server error: ValueError"}
        assert payload == encode_body(body)  # canonical even on the 500 path
        assert app.metrics.snapshot()["serving.errors"] == 1
        # The app survives: the next request is unaffected.
        assert app.dispatch("GET", "/healthz")[0] == 200

    def test_500_crosses_the_wire_and_keeps_the_connection(
        self, make_app, monkeypatch
    ):
        """Before the fix a raising handler killed the socket with no
        response; now the client reads a 500 and can keep pipelining."""
        from tests.serving.wire import WireClient

        from repro.serving import http as http_module

        def broken(snapshot):
            raise RuntimeError("boom")

        monkeypatch.setattr(http_module.handlers, "handle_stats", broken)
        app = make_app()
        server = StudyServer(app, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with WireClient(server.port) as client:
                status, body = client.get("/stats")
                assert status == 500
                assert json.loads(body)["error"].startswith("internal server error")
                status, body = client.get("/healthz")  # same connection
                assert status == 200
                assert json.loads(body)["status"] == "ok"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)


class TestKeepAliveBodyDrain:
    """POST bodies are drained, so pipelined requests behind them parse
    (the keep-alive corruption bug)."""

    @pytest.fixture
    def server(self, make_app, ladygaga_snapshot):
        app = make_app(reloader=lambda: ladygaga_snapshot)
        server = StudyServer(app, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield server
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)

    def test_pipelined_request_after_post_body(self, server, ladygaga_snapshot):
        """Two requests in one write: a POST with a body, then a GET.

        Before the fix the body bytes stayed buffered in ``rfile`` and
        were parsed as the second request's request line, corrupting the
        connection; both responses must now come back well-formed and
        the second must really be the ``/healthz`` answer.
        """
        from tests.serving.wire import WireClient, request_bytes

        with WireClient(server.port) as client:
            client.send_raw(
                request_bytes("POST", "/admin/reload", body=b"ignored body bytes")
                + request_bytes("GET", "/healthz")
            )
            status, _, body = client.read_response()
            assert status == 200
            assert json.loads(body)["current"] == ladygaga_snapshot.version
            status, _, body = client.read_response()
            assert status == 200
            assert json.loads(body)["status"] == "ok"

    def test_large_body_is_drained_in_chunks(self, server):
        from tests.serving.wire import WireClient, request_bytes

        with WireClient(server.port) as client:
            client.send_raw(
                request_bytes("POST", "/admin/reload", body=b"x" * 300_000)
                + request_bytes("GET", "/healthz")
            )
            assert client.read_response()[0] == 200
            status, _, body = client.read_response()
            assert status == 200
            assert json.loads(body)["status"] == "ok"

    def test_malformed_content_length_is_400(self, server):
        from tests.serving.wire import WireClient

        with WireClient(server.port) as client:
            client.send(
                "POST", "/admin/reload", headers={"Content-Length": "banana"}
            )
            status, _, body = client.read_response()
            assert status == 400
            assert "Content-Length" in json.loads(body)["error"]


class TestClientDisconnects:
    """A client hanging up is counted, not splattered as a traceback."""

    def test_reset_during_response_write_is_counted(self, make_app):
        from tests.serving.wire import WireClient

        app = make_app()
        gate = threading.Event()
        inner = app.dispatch

        def gated_dispatch(method, target):
            gate.wait(5.0)
            return inner(method, target)

        app.dispatch = gated_dispatch
        server = StudyServer(app, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = WireClient(server.port)
            client.send("GET", "/regions")
            client.rst_close()  # hard reset before the response is written
            gate.set()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if app.metrics.snapshot().get("serving.client_disconnects", 0) >= 1:
                    break
                time.sleep(0.01)
            assert app.metrics.snapshot()["serving.client_disconnects"] >= 1
        finally:
            gate.set()
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)


class TestDispatchBlocks:
    """The cold-``/reverse`` hint the asyncio front end routes on."""

    def test_cold_reverse_blocks_then_warm_does_not(self, make_app):
        app = make_app()
        target = "/reverse?lat=37.5&lon=127.0"
        assert app.dispatch_blocks("GET", target) is True
        status, _ = app.dispatch("GET", target)
        assert status == 200
        assert app.dispatch_blocks("GET", target) is False

    def test_non_reverse_and_malformed_never_block(self, make_app):
        app = make_app()
        for target in (
            "/lookup?user=1",
            "/healthz",
            "/reverse",  # missing params fail fast in the handler
            "/reverse?lat=oops&lon=127.0",
            "/reverse?lat=91.0&lon=127.0",  # out of range
        ):
            assert app.dispatch_blocks("GET", target) is False

    def test_probe_leaves_tier_stats_untouched(self, make_app):
        app = make_app()
        before = app.geocoder.stats.l1_misses
        app.dispatch_blocks("GET", "/reverse?lat=37.5&lon=127.0")
        assert app.geocoder.stats.l1_misses == before


class TestSighup:
    def test_install_and_fire(self, make_app, ladygaga_snapshot):
        import os
        import signal
        import time

        from repro.serving import install_reload_signal

        if not hasattr(signal, "SIGHUP"):
            pytest.skip("platform has no SIGHUP")
        app = make_app(reloader=lambda: ladygaga_snapshot)
        previous = signal.getsignal(signal.SIGHUP)
        try:
            assert install_reload_signal(app) is True
            os.kill(os.getpid(), signal.SIGHUP)
            deadline = time.monotonic() + 5.0
            while app.store.generation == 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert app.store.generation == 2
            assert app.store.current() is ladygaga_snapshot
        finally:
            signal.signal(signal.SIGHUP, previous)

    def test_not_installed_off_main_thread(self, make_app, korean_snapshot):
        import signal

        from repro.serving import install_reload_signal

        if not hasattr(signal, "SIGHUP"):
            pytest.skip("platform has no SIGHUP")
        app = make_app(reloader=lambda: korean_snapshot)
        outcome = []
        thread = threading.Thread(
            target=lambda: outcome.append(install_reload_signal(app))
        )
        thread.start()
        thread.join()
        assert outcome == [False]
