"""Shared serving fixtures: snapshots for both study datasets and an app
factory wiring a fresh geocode service per test."""

from __future__ import annotations

import pytest

from repro.geo.reverse import ReverseGeocoder
from repro.geocode.backend import DirectBackend
from repro.geocode.service import GeocodeService
from repro.serving import ServingApp, ServingSnapshot, SnapshotStore


@pytest.fixture(scope="session")
def korean_snapshot(small_ctx) -> ServingSnapshot:
    return ServingSnapshot.from_study(small_ctx.korean_study)


@pytest.fixture(scope="session")
def ladygaga_snapshot(small_ctx) -> ServingSnapshot:
    return ServingSnapshot.from_study(small_ctx.ladygaga_study)


@pytest.fixture
def make_app(small_ctx, korean_snapshot):
    """Factory building a ServingApp over the Korean snapshot.

    Each call wires a fresh store, geocode service, and metrics registry,
    so tests never share counters; keyword arguments pass through to
    :class:`ServingApp`.
    """

    def build(snapshot: ServingSnapshot | None = None, **kwargs) -> ServingApp:
        store = SnapshotStore(snapshot or korean_snapshot)
        geocoder = GeocodeService(
            DirectBackend(ReverseGeocoder(small_ctx.korean_dataset.gazetteer))
        )
        return ServingApp(store, geocoder, **kwargs)

    return build
