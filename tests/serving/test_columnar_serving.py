"""Serving over columnar study artifacts + latency epoch partitioning.

Two claims: a snapshot served from a mmap'd ``.cstudy`` buffer is
observationally identical to one served from the JSON document (same
version tag, same bytes on every endpoint, hot-swapping between the two
is a no-op); and the per-endpoint latency windows partition on the
store generation, so a reload never leaves percentiles mixing samples
measured against different snapshots.
"""

from __future__ import annotations

import pytest

from repro.analysis.serialization import save_study
from repro.columnar.interner import study_interner
from repro.columnar.storage import save_study_columnar
from repro.serving import ServingSnapshot, load_snapshot


@pytest.fixture(scope="module")
def korean_cstudy(small_ctx, tmp_path_factory):
    path = tmp_path_factory.mktemp("cstudy") / "korean.cstudy"
    save_study_columnar(small_ctx.korean_study, path)
    return path


class TestColumnarSnapshot:
    def test_load_snapshot_sniffs_columnar(self, small_ctx, korean_cstudy):
        """The same study produces the same snapshot version whether it
        is loaded from JSON or mmap'd from the columnar buffer."""
        reference = ServingSnapshot.from_study(small_ctx.korean_study)
        columnar = load_snapshot(
            korean_cstudy, small_ctx.korean_dataset.gazetteer
        )
        assert columnar.version == reference.version
        assert columnar.digest == reference.digest
        assert columnar.users == reference.users
        assert columnar.regions == reference.regions

    def test_load_snapshot_still_reads_json(self, small_ctx, tmp_path):
        path = tmp_path / "korean.json"
        save_study(small_ctx.korean_study, path)
        loaded = load_snapshot(path, small_ctx.korean_dataset.gazetteer)
        reference = ServingSnapshot.from_study(small_ctx.korean_study)
        assert loaded.version == reference.version

    def test_snapshot_interner_is_canonical(self, small_ctx, korean_snapshot):
        study = small_ctx.korean_study
        canonical = study_interner(study.observations, study.profile_districts)
        assert korean_snapshot.interner == canonical
        assert korean_snapshot.interner.digest() == canonical.digest()

    def test_columnar_reload_shares_the_id_space(
        self, small_ctx, korean_snapshot, korean_cstudy
    ):
        columnar = load_snapshot(
            korean_cstudy, small_ctx.korean_dataset.gazetteer
        )
        assert columnar.interner.digest() == korean_snapshot.interner.digest()

    def test_matched_keys_lookup(self, korean_snapshot):
        assert korean_snapshot.matched_keys, "no matched users in study"
        for key, user_id in korean_snapshot.matched_keys.items():
            assert korean_snapshot.matched_user(key) == user_id
            record = korean_snapshot.users[user_id]
            assert record["matched_string"].startswith(key)
        assert korean_snapshot.matched_user("no#such#key") is None


class TestHotSwapAcrossFormats:
    def test_swap_json_to_columnar_is_observational_noop(
        self, small_ctx, make_app, korean_cstudy
    ):
        app = make_app(
            reloader=lambda: load_snapshot(
                korean_cstudy, small_ctx.korean_dataset.gazetteer
            )
        )
        user_id = next(iter(app.store.current().users))
        target = f"/lookup?user={user_id}"
        status, before = app.dispatch("GET", target)
        assert status == 200
        status, body = app.dispatch("POST", "/admin/reload")
        assert status == 200
        assert b'"changed": false' in body or b'"changed":false' in body
        status, after = app.dispatch("GET", target)
        assert status == 200
        assert after == before


class TestLatencyEpochAcrossReload:
    def test_window_resets_on_swap_lifetime_survives(
        self, small_ctx, make_app, korean_cstudy
    ):
        app = make_app(
            reloader=lambda: load_snapshot(
                korean_cstudy, small_ctx.korean_dataset.gazetteer
            )
        )
        user_id = next(iter(app.store.current().users))
        target = f"/lookup?user={user_id}"
        for _ in range(5):
            app.dispatch("GET", target)
        histogram = app.metrics.histogram("serving.latency.lookup")
        assert histogram.count == 5
        assert histogram.epoch == 1
        assert len(histogram._ring) == 5

        app.dispatch("POST", "/admin/reload")
        app.dispatch("GET", target)
        assert histogram.epoch == 2
        # Window holds only the post-swap sample; lifetime spans both.
        assert len(histogram._ring) == 1
        assert histogram.count == 6
