"""Unit tests for the replayable firehose source."""

import pytest

from repro.errors import ConfigurationError, NotFoundError, ServiceUnavailableError
from repro.storage.userstore import UserStore
from repro.streaming import FirehoseSource
from repro.streaming.source import BACKOFF_BASE_S, BACKOFF_CAP_S
from repro.twitter.models import Tweet

from tests.streaming.conftest import make_user


def _tweet(i, text="hello"):
    return Tweet(tweet_id=i, user_id=1, created_at_ms=i * 1000, text=text)


def _directory():
    store = UserStore()
    store.insert(make_user(1, "Seoul", screen_name="a"))
    return store


class TestDelivery:
    def test_delivers_in_id_order_with_offsets(self):
        source = FirehoseSource([_tweet(3), _tweet(1), _tweet(2)], _directory())
        pairs = list(source.iter_from(0))
        assert [offset for offset, _ in pairs] == [0, 1, 2]
        assert [t.tweet_id for _, t in pairs] == [1, 2, 3]
        assert source.stats.delivered == 3

    def test_track_filter_applies_at_subscription(self):
        tweets = [_tweet(1, "lady gaga tonight"), _tweet(2, "weather"),
                  _tweet(3, "LADY GAGA!")]
        source = FirehoseSource(tweets, _directory(), track=("lady gaga",))
        assert len(source) == 2
        assert source.stats.filtered_out == 1
        assert source.track == ("lady gaga",)

    def test_iter_from_midpoint_replays_suffix(self):
        source = FirehoseSource([_tweet(i) for i in range(5)], _directory())
        assert [offset for offset, _ in source.iter_from(3)] == [3, 4]

    def test_offset_bounds_validated(self):
        source = FirehoseSource([_tweet(1)], _directory())
        with pytest.raises(ConfigurationError):
            next(source.iter_from(2))
        with pytest.raises(ConfigurationError):
            next(source.iter_from(-1))

    def test_user_hydration(self):
        source = FirehoseSource([_tweet(1)], _directory())
        assert source.user(1).screen_name == "a"
        with pytest.raises(NotFoundError):
            source.user(99)


class TestDisconnects:
    def test_disconnect_schedule_raises_and_counts(self):
        source = FirehoseSource(
            [_tweet(i) for i in range(5)], _directory(), disconnect_every=2
        )
        delivered = []
        with pytest.raises(ServiceUnavailableError):
            for offset, _ in source.iter_from(0):
                delivered.append(offset)
        assert delivered == [0, 1]
        assert source.stats.disconnects == 1

    def test_resubscribe_continues_and_counts(self):
        source = FirehoseSource(
            [_tweet(i) for i in range(5)], _directory(), disconnect_every=2
        )
        delivered = []
        offset = 0
        while True:
            try:
                for position, _ in source.iter_from(offset):
                    delivered.append(position)
                    offset = position + 1
                break
            except ServiceUnavailableError:
                source.reconnect_backoff_s()
        assert delivered == [0, 1, 2, 3, 4]
        assert source.stats.resubscribes == 2
        assert source.stats.delivered == 5

    def test_backoff_is_exponential_capped_and_virtual(self):
        source = FirehoseSource([_tweet(1)], _directory())
        charged = []
        for disconnects in (1, 2, 3, 20):
            source.stats.disconnects = disconnects
            charged.append(source.reconnect_backoff_s())
        assert charged[:3] == [BACKOFF_BASE_S, BACKOFF_BASE_S * 2, BACKOFF_BASE_S * 4]
        assert charged[3] == BACKOFF_CAP_S
        assert source.clock.now_s == pytest.approx(sum(charged))
        assert source.stats.backoff_s == pytest.approx(sum(charged))

    def test_negative_disconnect_every_rejected(self):
        with pytest.raises(ConfigurationError):
            FirehoseSource([], _directory(), disconnect_every=-1)
