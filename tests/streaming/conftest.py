"""Shared helpers for the streaming test suite."""

from __future__ import annotations

from repro.twitter.models import MobilityClass, ProfileStyle, TwitterUser


def make_user(
    user_id: int, profile_location: str, screen_name: str | None = None
) -> TwitterUser:
    """A minimal well-formed user for bespoke streaming corpora."""
    return TwitterUser(
        user_id=user_id,
        screen_name=screen_name or f"user{user_id}",
        profile_location=profile_location,
        created_at_ms=0,
        has_smartphone=True,
        home_state="Seoul",
        home_county="Gangnam-gu",
        mobility=MobilityClass.HOME_ANCHORED,
        profile_style=ProfileStyle.DISTRICT,
    )
