"""Unit tests for the journal-first consumer: WAL, checkpoints, resume."""

import pytest

from repro.analysis.incremental import IncrementalStudyAccumulator
from repro.errors import ConfigurationError, StorageError
from repro.geo.point import GeoPoint
from repro.storage.tweetstore import TweetStore
from repro.storage.userstore import UserStore
from repro.streaming import CheckpointLog, StreamConfig, StreamConsumer, state_digest
from repro.twitter.models import Tweet

from tests.streaming.conftest import make_user

GANGNAM = GeoPoint(37.517, 127.047)
JONGNO = GeoPoint(37.573, 126.979)


def _directory():
    store = UserStore()
    store.insert(make_user(1, "Gangnam-gu, Seoul"))
    store.insert(make_user(2, "Jongno-gu, Seoul"))
    store.insert(make_user(3, "somewhere vague"))
    return store


def _tweet(i, user_id=1, point=GANGNAM):
    return Tweet(tweet_id=i, user_id=user_id, created_at_ms=i * 1000,
                 text=f"t{i}", coordinates=point)


def _batch(offsets, **kwargs):
    return [(i, _tweet(i, **kwargs)) for i in offsets]


def _consumer(tmp_path, gazetteer, checkpoint_every=2):
    accumulator = IncrementalStudyAccumulator(gazetteer, _directory())
    log = CheckpointLog(tmp_path / "ckpt.jsonl")
    consumer = StreamConsumer(
        accumulator, tmp_path / "wal.jsonl", log, checkpoint_every
    )
    return consumer, log


class TestConfig:
    def test_stream_config_validates_every_field(self):
        for field in ("batch_size", "capacity", "drain_every", "checkpoint_every"):
            with pytest.raises(ConfigurationError):
                StreamConfig(**{field: 0})

    def test_checkpoint_every_validated(self, tmp_path, korean_gazetteer):
        with pytest.raises(ConfigurationError):
            _consumer(tmp_path, korean_gazetteer, checkpoint_every=0)


class TestConsume:
    def test_journal_written_before_fold(self, tmp_path, korean_gazetteer):
        consumer, _ = _consumer(tmp_path, korean_gazetteer)
        produced = consumer.consume(_batch([0, 1]), safe_offset=2)
        assert produced == 2
        assert consumer.wal_records == 2
        assert consumer.batches == 1
        wal = TweetStore.load(tmp_path / "wal.jsonl")
        assert len(wal) == 2

    def test_checkpoint_cadence(self, tmp_path, korean_gazetteer):
        consumer, log = _consumer(tmp_path, korean_gazetteer, checkpoint_every=2)
        consumer.consume(_batch([0]), safe_offset=1)
        assert log.latest() is None
        assert consumer.checkpoint_age == 1
        consumer.consume(_batch([1]), safe_offset=2)
        latest = log.latest()
        assert latest is not None
        assert latest.offset == 2
        assert latest.batches == 2
        assert latest.wal_records == 2
        assert latest.digest == state_digest(consumer.accumulator.grouper)
        assert consumer.checkpoint_age == 0

    def test_stats_source(self, tmp_path, korean_gazetteer):
        consumer, _ = _consumer(tmp_path, korean_gazetteer, checkpoint_every=1)
        consumer.consume(_batch([0, 1]), safe_offset=2)
        stats = consumer.stats_source()
        assert stats["batches"] == 1
        assert stats["folded"] == 2
        assert stats["observations"] == 2
        assert stats["wal_records"] == 2
        assert stats["checkpoints"] == 1
        assert stats["checkpoint_age_batches"] == 0


class TestResume:
    def _crash_scenario(self, tmp_path, gazetteer):
        """Two durable batches, one batch of rework, one torn line."""
        consumer, log = _consumer(tmp_path, gazetteer, checkpoint_every=2)
        consumer.consume(_batch([0, 1]), safe_offset=2)
        consumer.consume(_batch([2], user_id=2, point=JONGNO), safe_offset=3)
        assert log.latest() is not None
        consumer.consume(_batch([3]), safe_offset=4)  # past the checkpoint
        with (tmp_path / "wal.jsonl").open("a", encoding="utf-8") as handle:
            handle.write('{"tweet_id": 99, "user')  # crash mid-append
        return log

    def test_resume_replays_verifies_and_compacts(self, tmp_path, korean_gazetteer):
        log = self._crash_scenario(tmp_path, korean_gazetteer)
        latest = log.latest()
        accumulator = IncrementalStudyAccumulator(korean_gazetteer, _directory())
        consumer, offset = StreamConsumer.resume(
            accumulator, tmp_path / "wal.jsonl", log, checkpoint_every=2
        )
        assert offset == latest.offset == 3
        assert consumer.batches == latest.batches == 2
        assert consumer.wal_records == latest.wal_records == 3
        assert state_digest(accumulator.grouper) == latest.digest
        # Compaction dropped the rework batch and the torn tail.
        wal = TweetStore.load(tmp_path / "wal.jsonl")
        assert sorted(t.tweet_id for t in wal) == [0, 1, 2]
        assert accumulator.observations_folded == 3

    def test_resume_digest_mismatch_raises(self, tmp_path, korean_gazetteer):
        log = self._crash_scenario(tmp_path, korean_gazetteer)
        path = log.path
        tampered = path.read_text(encoding="utf-8").replace(
            log.latest().digest, "0" * 64
        )
        path.write_text(tampered, encoding="utf-8")
        accumulator = IncrementalStudyAccumulator(korean_gazetteer, _directory())
        with pytest.raises(StorageError, match="digest"):
            StreamConsumer.resume(accumulator, tmp_path / "wal.jsonl", log)

    def test_resume_with_short_wal_raises(self, tmp_path, korean_gazetteer):
        log = self._crash_scenario(tmp_path, korean_gazetteer)
        (tmp_path / "wal.jsonl").write_text("", encoding="utf-8")
        accumulator = IncrementalStudyAccumulator(korean_gazetteer, _directory())
        with pytest.raises(StorageError, match="checkpoint covers"):
            StreamConsumer.resume(accumulator, tmp_path / "wal.jsonl", log)

    def test_resume_without_checkpoint_starts_clean(self, tmp_path, korean_gazetteer):
        wal_path = tmp_path / "wal.jsonl"
        consumer, log = _consumer(tmp_path, korean_gazetteer, checkpoint_every=9)
        consumer.consume(_batch([0, 1]), safe_offset=2)  # never checkpointed
        accumulator = IncrementalStudyAccumulator(korean_gazetteer, _directory())
        resumed, offset = StreamConsumer.resume(accumulator, wal_path, log)
        assert offset == 0
        assert resumed.batches == 0
        assert accumulator.observations_folded == 0
        assert len(TweetStore.load(wal_path)) == 0  # journal discarded
