"""Unit tests for the durable checkpoint log."""

import json

import pytest

from repro.errors import StorageError
from repro.streaming import Checkpoint, CheckpointLog


def _checkpoint(n):
    return Checkpoint(offset=n * 10, wal_records=n * 10, batches=n,
                      ingested=n * 10, digest=f"digest-{n}")


class TestRoundTrip:
    def test_append_load_latest(self, tmp_path):
        log = CheckpointLog(tmp_path / "ckpt.jsonl")
        assert log.load() == []
        assert log.latest() is None
        for n in (1, 2, 3):
            log.append(_checkpoint(n))
        assert log.load() == [_checkpoint(1), _checkpoint(2), _checkpoint(3)]
        assert log.latest() == _checkpoint(3)

    def test_dict_round_trip(self):
        record = _checkpoint(4)
        assert Checkpoint.from_dict(record.to_dict()) == record

    def test_malformed_dict_raises(self):
        with pytest.raises(StorageError):
            Checkpoint.from_dict({"offset": 1})


class TestCrashTolerance:
    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        log = CheckpointLog(path)
        log.append(_checkpoint(1))
        log.append(_checkpoint(2))
        text = path.read_text(encoding="utf-8")
        path.write_text(text + '{"offset": 3, "wal_re', encoding="utf-8")
        assert log.load() == [_checkpoint(1), _checkpoint(2)]
        assert log.latest() == _checkpoint(2)

    def test_complete_unterminated_final_line_is_kept(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        log = CheckpointLog(path)
        log.append(_checkpoint(1))
        payload = json.dumps(_checkpoint(2).to_dict())
        path.write_text(path.read_text(encoding="utf-8") + payload, encoding="utf-8")
        assert log.latest() == _checkpoint(2)

    def test_corrupt_middle_raises(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        log = CheckpointLog(path)
        log.append(_checkpoint(1))
        path.write_text(
            path.read_text(encoding="utf-8") + "garbage\n"
            + json.dumps(_checkpoint(2).to_dict()) + "\n",
            encoding="utf-8",
        )
        with pytest.raises(StorageError):
            log.load()
