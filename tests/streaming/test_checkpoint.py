"""Unit tests for the durable checkpoint log."""

import json

import pytest

from repro.analysis.incremental import IncrementalStudyAccumulator
from repro.errors import StorageError
from repro.geo.point import GeoPoint
from repro.storage.userstore import UserStore
from repro.streaming import Checkpoint, CheckpointLog, StreamConsumer
from repro.twitter.models import Tweet

from tests.streaming.conftest import make_user


def _checkpoint(n):
    return Checkpoint(offset=n * 10, wal_records=n * 10, batches=n,
                      ingested=n * 10, digest=f"digest-{n}")


class TestRoundTrip:
    def test_append_load_latest(self, tmp_path):
        log = CheckpointLog(tmp_path / "ckpt.jsonl")
        assert log.load() == []
        assert log.latest() is None
        for n in (1, 2, 3):
            log.append(_checkpoint(n))
        assert log.load() == [_checkpoint(1), _checkpoint(2), _checkpoint(3)]
        assert log.latest() == _checkpoint(3)

    def test_dict_round_trip(self):
        record = _checkpoint(4)
        assert Checkpoint.from_dict(record.to_dict()) == record

    def test_malformed_dict_raises(self):
        with pytest.raises(StorageError):
            Checkpoint.from_dict({"offset": 1})


class TestCrashTolerance:
    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        log = CheckpointLog(path)
        log.append(_checkpoint(1))
        log.append(_checkpoint(2))
        text = path.read_text(encoding="utf-8")
        path.write_text(text + '{"offset": 3, "wal_re', encoding="utf-8")
        assert log.load() == [_checkpoint(1), _checkpoint(2)]
        assert log.latest() == _checkpoint(2)

    def test_complete_unterminated_final_line_is_kept(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        log = CheckpointLog(path)
        log.append(_checkpoint(1))
        payload = json.dumps(_checkpoint(2).to_dict())
        path.write_text(path.read_text(encoding="utf-8") + payload, encoding="utf-8")
        assert log.latest() == _checkpoint(2)

    def test_resume_falls_back_past_a_torn_final_line(
        self, tmp_path, korean_gazetteer
    ):
        """A crash mid-checkpoint-append costs nothing durable: resume
        loads the log through the same torn-tail-tolerant journal read
        and restarts from the last *complete* checkpoint."""
        users = UserStore()
        users.insert(make_user(1, "Gangnam-gu, Seoul"))
        accumulator = IncrementalStudyAccumulator(korean_gazetteer, users)
        log = CheckpointLog(tmp_path / "ckpt.jsonl")
        wal_path = tmp_path / "wal.jsonl"
        consumer = StreamConsumer(accumulator, wal_path, log, checkpoint_every=1)
        for i in range(3):
            tweet = Tweet(tweet_id=i, user_id=1, created_at_ms=i * 1000,
                          text=f"t{i}",
                          coordinates=GeoPoint(37.517, 127.047))
            consumer.consume([(i, tweet)], safe_offset=i + 1)
        durable = log.latest()
        assert durable.batches == 3
        with log.path.open("a", encoding="utf-8") as handle:
            handle.write('{"offset": 9, "wal_re')  # crash mid-append
        assert log.load() == log.load()[:3] and len(log.load()) == 3
        rebuilt = IncrementalStudyAccumulator(korean_gazetteer, users)
        resumed, offset = StreamConsumer.resume(
            rebuilt, wal_path, log, checkpoint_every=1
        )
        assert offset == durable.offset == 3
        assert resumed.batches == durable.batches
        assert resumed.wal_records == durable.wal_records
        assert rebuilt.observations_folded == 3

    def test_corrupt_middle_raises(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        log = CheckpointLog(path)
        log.append(_checkpoint(1))
        path.write_text(
            path.read_text(encoding="utf-8") + "garbage\n"
            + json.dumps(_checkpoint(2).to_dict()) + "\n",
            encoding="utf-8",
        )
        with pytest.raises(StorageError):
            log.load()
