"""Unit tests for the bounded ingest queue and its backpressure policies."""

import pytest

from repro.errors import ConfigurationError
from repro.streaming import BackpressurePolicy, BoundedTweetQueue, PutOutcome
from repro.twitter.models import Tweet


def _tweet(i):
    return Tweet(tweet_id=i, user_id=1, created_at_ms=i * 1000, text=f"t{i}")


def _fill(queue, n, start=0):
    for i in range(start, start + n):
        assert queue.offer(i, _tweet(i)) is PutOutcome.ENQUEUED


class TestBasics:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            BoundedTweetQueue(0)

    def test_fifo_order_and_offsets(self):
        queue = BoundedTweetQueue(4)
        _fill(queue, 3)
        assert queue.head_offset == 0
        batch = queue.take_batch(2)
        assert [offset for offset, _ in batch] == [0, 1]
        assert queue.head_offset == 2
        assert len(queue) == 1

    def test_head_offset_empty(self):
        assert BoundedTweetQueue(2).head_offset is None

    def test_take_batch_respects_limit(self):
        queue = BoundedTweetQueue(8)
        _fill(queue, 5)
        assert len(queue.take_batch(3)) == 3
        assert len(queue.take_batch(10)) == 2
        assert queue.take_batch(10) == []

    def test_high_watermark(self):
        queue = BoundedTweetQueue(8)
        _fill(queue, 5)
        queue.take_batch(5)
        _fill(queue, 2, start=5)
        assert queue.stats.high_watermark == 5


class TestBlock:
    def test_full_queue_reports_would_block_without_enqueuing(self):
        queue = BoundedTweetQueue(2, BackpressurePolicy.BLOCK)
        _fill(queue, 2)
        assert queue.offer(2, _tweet(2)) is PutOutcome.WOULD_BLOCK
        assert len(queue) == 2
        assert queue.stats.block_waits == 1
        assert queue.stats.dropped == 0

    def test_retry_after_drain_succeeds(self):
        queue = BoundedTweetQueue(2, BackpressurePolicy.BLOCK)
        _fill(queue, 2)
        assert queue.offer(2, _tweet(2)) is PutOutcome.WOULD_BLOCK
        queue.take_batch(1)
        assert queue.offer(2, _tweet(2)) is PutOutcome.ENQUEUED
        assert [o for o, _ in queue.take_batch(5)] == [1, 2]


class TestDropOldest:
    def test_evicts_head_to_admit_newest(self):
        queue = BoundedTweetQueue(2, BackpressurePolicy.DROP_OLDEST)
        _fill(queue, 2)
        assert queue.offer(2, _tweet(2)) is PutOutcome.DROPPED_OLDEST
        assert [o for o, _ in queue.take_batch(5)] == [1, 2]
        assert queue.stats.dropped_oldest == 1
        assert queue.stats.dropped == 1


class TestShed:
    def test_rejects_newest_and_counts(self):
        queue = BoundedTweetQueue(2, BackpressurePolicy.SHED)
        _fill(queue, 2)
        assert queue.offer(2, _tweet(2)) is PutOutcome.SHED
        assert [o for o, _ in queue.take_batch(5)] == [0, 1]
        assert queue.stats.shed == 1
        assert queue.stats.dropped == 1


class TestSnapshot:
    def test_snapshot_reports_depth_and_counters(self):
        queue = BoundedTweetQueue(3, BackpressurePolicy.SHED)
        _fill(queue, 3)
        queue.offer(3, _tweet(3))
        view = queue.snapshot()
        assert view["depth"] == 3
        assert view["capacity"] == 3
        assert view["enqueued"] == 3
        assert view["shed"] == 1
        assert view["dropped"] == 1
        assert view["high_watermark"] == 3
