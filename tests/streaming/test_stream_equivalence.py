"""The streaming subsystem's acceptance property: stream ≡ batch, byte for byte.

Every test here compares :func:`~repro.analysis.serialization.study_to_json`
documents — the exact text ``study --save`` writes — so "equal" means the
end-of-stream snapshot is **byte-identical** to the batch ``run_study``
over the same corpus: funnel, observations, merged strings, statistics,
and the simulated PlaceFinder accounting included.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.correlation import run_study
from repro.analysis.incremental import IncrementalStudyAccumulator
from repro.analysis.serialization import study_to_json
from repro.engine.context import RunContext
from repro.errors import ConfigurationError
from repro.geo.gazetteer import Gazetteer
from repro.geo.point import GeoPoint
from repro.storage.tweetstore import TweetStore
from repro.storage.userstore import UserStore
from repro.streaming import (
    BackpressurePolicy,
    BoundedTweetQueue,
    CheckpointLog,
    FirehoseSource,
    StreamConfig,
    StreamConsumer,
    StreamPump,
)
from repro.twitter.models import Tweet

from tests.streaming.conftest import make_user

POLICIES = tuple(BackpressurePolicy)
CRASH_POINTS = (1, 5, 23)


def run_stream(
    dataset,
    dataset_name,
    state_dir,
    *,
    policy=BackpressurePolicy.BLOCK,
    batch_size=128,
    capacity=512,
    drain_every=64,
    checkpoint_every=3,
    disconnect_every=0,
    resume=False,
    max_batches=None,
):
    """Wire up and run one stream; returns ``(snapshot, queue)``."""
    accumulator = IncrementalStudyAccumulator(dataset.gazetteer, dataset.users)
    log = CheckpointLog(state_dir / "checkpoints.jsonl")
    wal_path = state_dir / "wal.jsonl"
    if resume:
        consumer, offset = StreamConsumer.resume(
            accumulator, wal_path, log, checkpoint_every
        )
    else:
        consumer = StreamConsumer(accumulator, wal_path, log, checkpoint_every)
        offset = 0
    source = FirehoseSource(
        dataset.tweets, dataset.users, disconnect_every=disconnect_every
    )
    queue = BoundedTweetQueue(capacity, policy)
    config = StreamConfig(
        batch_size=batch_size,
        capacity=capacity,
        policy=policy,
        drain_every=drain_every,
        checkpoint_every=checkpoint_every,
    )
    pump = StreamPump(
        source, queue, consumer, config, RunContext(dataset_name=dataset_name)
    )
    return pump.run(start_offset=offset, max_batches=max_batches), queue


@pytest.fixture(params=("korean", "ladygaga"))
def corpus(request, small_ctx):
    """One of the two study corpora with its precomputed batch study."""
    if request.param == "korean":
        return small_ctx.korean_dataset, study_to_json(small_ctx.korean_study)
    return small_ctx.ladygaga_dataset, study_to_json(small_ctx.ladygaga_study)


class TestEndOfStream:
    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.value)
    def test_byte_identical_per_policy(self, corpus, policy, tmp_path):
        dataset, expected = corpus
        name = small_name(expected)
        snapshot, queue = run_stream(dataset, name, tmp_path, policy=policy)
        assert snapshot.exhausted
        assert queue.stats.dropped == 0  # capacity ample: every policy lossless
        assert study_to_json(snapshot.result) == expected

    def test_disconnects_do_not_change_the_study(self, corpus, tmp_path):
        dataset, expected = corpus
        snapshot, _ = run_stream(
            dataset, small_name(expected), tmp_path, disconnect_every=503
        )
        assert study_to_json(snapshot.result) == expected

    def test_consumer_starvation_does_not_change_the_study(self, corpus, tmp_path):
        dataset, expected = corpus
        # BLOCK with a slow consumer: the producer stalls instead of losing.
        snapshot, queue = run_stream(
            dataset,
            small_name(expected),
            tmp_path,
            capacity=16,
            batch_size=8,
            drain_every=1000,
        )
        assert queue.stats.block_waits > 0
        assert queue.stats.dropped == 0
        assert study_to_json(snapshot.result) == expected


class TestCrashResume:
    @pytest.mark.parametrize("crash_after", CRASH_POINTS)
    def test_resume_reaches_byte_identical_end_state(
        self, corpus, crash_after, tmp_path
    ):
        dataset, expected = corpus
        name = small_name(expected)
        partial, _ = run_stream(
            dataset, name, tmp_path, max_batches=crash_after
        )
        assert not partial.exhausted
        final, _ = run_stream(dataset, name, tmp_path, resume=True)
        assert final.exhausted
        assert study_to_json(final.result) == expected

    def test_repeated_crashes_still_converge(self, small_ctx, tmp_path):
        dataset = small_ctx.ladygaga_dataset
        expected = study_to_json(small_ctx.ladygaga_study)
        name = small_name(expected)
        run_stream(dataset, name, tmp_path, max_batches=2)
        run_stream(dataset, name, tmp_path, resume=True, max_batches=4)
        final, _ = run_stream(dataset, name, tmp_path, resume=True)
        assert final.exhausted
        assert study_to_json(final.result) == expected

    def test_crash_loses_at_most_one_checkpoint_interval(self, small_ctx, tmp_path):
        dataset = small_ctx.ladygaga_dataset
        partial, _ = run_stream(
            dataset, "Lady Gaga", tmp_path, max_batches=7, checkpoint_every=3
        )
        latest = CheckpointLog(tmp_path / "checkpoints.jsonl").latest()
        assert latest is not None
        # 7 batches folded, checkpoints at 3 and 6: at most checkpoint_every
        # batches of work are volatile at any crash instant.
        assert latest.batches == 6
        assert partial.batches - latest.batches < 3


class TestBackpressureLoss:
    @pytest.mark.parametrize(
        "policy", (BackpressurePolicy.DROP_OLDEST, BackpressurePolicy.SHED),
        ids=lambda p: p.value,
    )
    def test_lossy_overflow_matches_batch_over_ingested_corpus(
        self, small_ctx, policy, tmp_path
    ):
        dataset = small_ctx.ladygaga_dataset
        snapshot, queue = run_stream(
            dataset,
            "Lady Gaga",
            tmp_path,
            policy=policy,
            capacity=8,
            batch_size=8,
            drain_every=40,
        )
        assert queue.stats.dropped > 0
        ingested = TweetStore.load(tmp_path / "wal.jsonl")
        assert len(ingested) == len(dataset.tweets) - queue.stats.dropped
        batch = run_study(
            dataset.users, ingested, dataset.gazetteer, dataset_name="Lady Gaga"
        )
        assert study_to_json(snapshot.result) == study_to_json(batch)


class TestMidStream:
    def test_paused_snapshot_matches_batch_over_prefix(self, small_ctx, tmp_path):
        dataset = small_ctx.ladygaga_dataset
        snapshot, _ = run_stream(dataset, "Lady Gaga", tmp_path, max_batches=9)
        assert not snapshot.exhausted
        prefix = TweetStore.load(tmp_path / "wal.jsonl")
        assert 0 < len(prefix) < len(dataset.tweets)
        batch = run_study(
            dataset.users, prefix, dataset.gazetteer, dataset_name="Lady Gaga"
        )
        assert study_to_json(snapshot.result) == study_to_json(batch)


class TestAccumulatorContract:
    def test_min_gps_tweets_above_one_rejected(self, small_ctx):
        dataset = small_ctx.ladygaga_dataset
        with pytest.raises(ConfigurationError):
            IncrementalStudyAccumulator(
                dataset.gazetteer, dataset.users, min_gps_tweets=2
            )


def small_name(expected_json):
    """Recover the dataset name from the expected JSON document."""
    import json

    return json.loads(expected_json)["dataset_name"]


# --------------------------------------------------------------------------- #
# Randomised micro-corpus property: any knob combination, any crash point.    #
# --------------------------------------------------------------------------- #

_DISTRICT_POINTS = {
    "Gangnam-gu, Seoul": GeoPoint(37.517, 127.047),
    "Jongno-gu, Seoul": GeoPoint(37.573, 126.979),
    "Mapo-gu, Seoul": GeoPoint(37.566, 126.902),
}
_PROFILES = list(_DISTRICT_POINTS) + ["somewhere vague", ""]


class _MicroCorpus:
    """A tiny deterministic corpus shared across hypothesis examples."""

    def __init__(self):
        self.gazetteer = Gazetteer.korean()
        self.users = UserStore()
        for user_id in range(1, 6):
            profile = _PROFILES[(user_id - 1) % len(_PROFILES)]
            self.users.insert(make_user(user_id, profile))
        self.tweets = TweetStore()
        points = list(_DISTRICT_POINTS.values())
        for i in range(40):
            user_id = 1 + (i * 3) % 5
            point = points[i % 3] if i % 4 else None
            self.tweets.insert(
                Tweet(tweet_id=100 + i, user_id=user_id,
                      created_at_ms=1_000_000 + i * 60_000,
                      text=f"tweet {i}", coordinates=point)
            )


@pytest.fixture(scope="module")
def micro():
    corpus = _MicroCorpus()
    expected = study_to_json(
        run_study(corpus.users, corpus.tweets, corpus.gazetteer,
                  dataset_name="micro")
    )
    return corpus, expected


@given(
    policy=st.sampled_from(POLICIES),
    batch_size=st.integers(min_value=1, max_value=16),
    drain_every=st.integers(min_value=1, max_value=12),
    checkpoint_every=st.integers(min_value=1, max_value=5),
    crash_after=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=25, deadline=None)
def test_any_knobs_any_crash_point_converge(
    micro, tmp_path_factory, policy, batch_size, drain_every,
    checkpoint_every, crash_after,
):
    """For any policy/batching/checkpoint cadence and any crash point, a
    lossless-capacity stream resumes to the batch study, byte for byte."""
    corpus, expected = micro
    state_dir = tmp_path_factory.mktemp("stream")
    dataset = corpus
    partial, queue = run_stream(
        dataset, "micro", state_dir,
        policy=policy, batch_size=batch_size, capacity=64,
        drain_every=drain_every, checkpoint_every=checkpoint_every,
        max_batches=crash_after,
    )
    assert queue.stats.dropped == 0
    if partial.exhausted:
        assert study_to_json(partial.result) == expected
        return
    final, _ = run_stream(
        dataset, "micro", state_dir,
        policy=policy, batch_size=batch_size, capacity=64,
        drain_every=drain_every, checkpoint_every=checkpoint_every,
        resume=True,
    )
    assert final.exhausted
    assert study_to_json(final.result) == expected
