"""Unit tests for the refinement pipeline's funnel accounting."""

import pytest

from repro.datasets.refine import RefinementPipeline
from repro.geo.forward import TextGeocoder
from repro.geo.reverse import ReverseGeocoder
from repro.twitter.models import ProfileStyle
from repro.yahooapi.client import FailurePlan, PlaceFinderClient


@pytest.fixture(scope="module")
def refined(small_ctx):
    dataset = small_ctx.korean_dataset
    pipeline = RefinementPipeline(
        text_geocoder=TextGeocoder(dataset.gazetteer),
        placefinder=PlaceFinderClient(
            ReverseGeocoder(dataset.gazetteer), daily_quota=10**9
        ),
    )
    return pipeline.run(dataset.users, dataset.tweets)


class TestFunnelConsistency:
    def test_counts_add_up(self, refined, small_ctx):
        funnel = refined.funnel
        assert funnel.crawled_users == len(small_ctx.korean_dataset.users)
        assert sum(funnel.profile_status_counts.values()) == funnel.crawled_users
        assert funnel.well_defined_users == funnel.profile_status_counts["resolved"]
        assert funnel.users_with_gps <= funnel.well_defined_users
        assert funnel.study_users <= funnel.users_with_gps
        assert funnel.gps_tweets <= funnel.total_tweets

    def test_observations_belong_to_study_users(self, refined):
        study_ids = set(refined.study_users)
        assert {o.user_id for o in refined.observations} == study_ids
        assert set(refined.profile_districts) == study_ids

    def test_observation_profile_matches_resolved_district(self, refined):
        for obs in refined.observations:
            district = refined.profile_districts[obs.user_id]
            assert (obs.profile_state, obs.profile_county) == district.key()

    def test_vague_profiles_excluded(self, refined, small_ctx):
        for user_id in refined.study_users:
            user = small_ctx.korean_dataset.users.get(user_id)
            assert user.profile_style not in (
                ProfileStyle.VAGUE,
                ProfileStyle.EMPTY,
                ProfileStyle.COUNTRY_ONLY,
                ProfileStyle.CITY_ONLY,
            )

    def test_study_users_have_gps_tweets(self, refined, small_ctx):
        tweets = small_ctx.korean_dataset.tweets
        for user_id in refined.study_users:
            assert any(t.has_gps for t in tweets.by_user(user_id))


class TestThreshold:
    def test_min_gps_tweets_filters(self, small_ctx):
        dataset = small_ctx.korean_dataset
        make = lambda threshold: RefinementPipeline(  # noqa: E731
            text_geocoder=TextGeocoder(dataset.gazetteer),
            placefinder=PlaceFinderClient(
                ReverseGeocoder(dataset.gazetteer), daily_quota=10**9
            ),
            min_gps_tweets=threshold,
        ).run(dataset.users, dataset.tweets)
        loose = make(1)
        strict = make(5)
        assert strict.funnel.study_users < loose.funnel.study_users


class TestResilience:
    def test_transient_api_failures_survived(self, small_ctx):
        dataset = small_ctx.korean_dataset
        placefinder = PlaceFinderClient(
            ReverseGeocoder(dataset.gazetteer),
            daily_quota=10**9,
            failure_plan=FailurePlan(every_n=7),
        )
        pipeline = RefinementPipeline(
            text_geocoder=TextGeocoder(dataset.gazetteer), placefinder=placefinder
        )
        refined = pipeline.run(dataset.users, dataset.tweets)
        assert placefinder.stats.failures_injected > 0
        assert refined.funnel.study_users > 0
