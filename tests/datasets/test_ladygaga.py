"""Unit tests for the streaming (Lady Gaga) dataset builder."""

import pytest

from repro.datasets.ladygaga import LadyGagaDatasetConfig, build_ladygaga_dataset
from repro.twitter.tweetgen import CollectionWindow

FAST = LadyGagaDatasetConfig(
    population_size=300,
    window=CollectionWindow(start_ms=1_314_835_200_000, days=10),
    seed=19,
)


@pytest.fixture(scope="module")
def dataset():
    return build_ladygaga_dataset(FAST)


class TestBuild:
    def test_every_tweet_matches_track(self, dataset):
        for tweet in dataset.tweets:
            assert "lady gaga" in tweet.text.lower()

    def test_users_are_exactly_stream_authors(self, dataset):
        authors = {t.user_id for t in dataset.tweets}
        stored = {u.user_id for u in dataset.users}
        assert stored == authors

    def test_stream_stats_consistent(self, dataset):
        assert dataset.stream_stats.delivered == len(dataset.tweets)
        assert dataset.stream_stats.filtered_out > 0

    def test_summary(self, dataset):
        assert dataset.summary.name == "Lady Gaga"
        assert "Streaming API" in dataset.summary.collection_api
        assert dataset.summary.extra["track"] == "lady gaga"

    def test_worldwide_population(self, dataset):
        states = {u.home_state for u in dataset.users}
        # The combined gazetteer spans the globe; the sample should too.
        assert len(states) > 10

    def test_deterministic(self):
        a = build_ladygaga_dataset(FAST)
        b = build_ladygaga_dataset(FAST)
        assert len(a.tweets) == len(b.tweets)
        assert [u.user_id for u in a.users] == [u.user_id for u in b.users]

    def test_stream_limit(self):
        limited = build_ladygaga_dataset(
            LadyGagaDatasetConfig(
                population_size=300,
                window=CollectionWindow(start_ms=1_314_835_200_000, days=10),
                seed=19,
                stream_limit=50,
            )
        )
        assert len(limited.tweets) == 50
