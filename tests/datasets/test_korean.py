"""Unit tests for the Korean dataset builder."""

import pytest

from repro.datasets.korean import KoreanDatasetConfig, build_korean_dataset
from repro.errors import ConfigurationError
from repro.twitter.tweetgen import CollectionWindow

FAST = KoreanDatasetConfig(
    population_size=250,
    crawl_limit=200,
    window=CollectionWindow(start_ms=1_314_835_200_000, days=10),
    use_api_timelines=False,
    seed=17,
)


@pytest.fixture(scope="module")
def dataset():
    return build_korean_dataset(FAST)


class TestConfig:
    def test_crawl_limit_bounded(self):
        with pytest.raises(ConfigurationError):
            KoreanDatasetConfig(population_size=10, crawl_limit=20)

    def test_paper_scale_documented(self):
        config = KoreanDatasetConfig.paper_scale()
        assert config.crawl_limit == 52_200
        assert not config.use_api_timelines


class TestBuild:
    def test_counts(self, dataset):
        assert len(dataset.users) == 200
        assert len(dataset.tweets) > 0
        assert dataset.summary.user_count == 200
        assert dataset.summary.tweet_count == len(dataset.tweets)
        assert dataset.summary.geotagged_tweet_count == dataset.tweets.gps_count()

    def test_every_tweet_belongs_to_a_crawled_user(self, dataset):
        for user_id in dataset.tweets.user_ids():
            assert user_id in dataset.users

    def test_crawl_provenance(self, dataset):
        assert dataset.crawl.api_calls > 0
        assert dataset.crawl.user_ids[0] == dataset.crawl.users[0].user_id
        assert dataset.summary.extra["crawl_api_calls"] == dataset.crawl.api_calls

    def test_deterministic(self):
        a = build_korean_dataset(FAST)
        b = build_korean_dataset(FAST)
        assert [u.user_id for u in a.users] == [u.user_id for u in b.users]
        assert len(a.tweets) == len(b.tweets)

    def test_api_and_bulk_paths_agree(self):
        config_api = KoreanDatasetConfig(
            population_size=120,
            crawl_limit=100,
            window=CollectionWindow(start_ms=1_314_835_200_000, days=7),
            use_api_timelines=True,
            seed=23,
        )
        config_bulk = KoreanDatasetConfig(
            population_size=120,
            crawl_limit=100,
            window=CollectionWindow(start_ms=1_314_835_200_000, days=7),
            use_api_timelines=False,
            seed=23,
        )
        via_api = build_korean_dataset(config_api)
        via_bulk = build_korean_dataset(config_bulk)
        assert len(via_api.tweets) == len(via_bulk.tweets)
        assert sorted(t.tweet_id for t in via_api.tweets) == sorted(
            t.tweet_id for t in via_bulk.tweets
        )
