"""Engine-level equivalence of the columnar grouping path.

The acceptance bar of the columnar refactor: with ``columnar`` on or
off, ``run_study`` produces the byte-identical ``study_to_json``
document — and therefore the identical ``study_digest`` / serving
version — on both datasets, on the serial and the process backend.
Also pins the ``ShardedExecutor`` no-pool fix: single-shard and
all-empty workloads must never fork a worker fleet.
"""

import pytest

from repro.analysis.correlation import run_study
from repro.analysis.serialization import study_digest, study_to_json
from repro.engine import EngineConfig
from repro.engine.engine import default_engine_config
from repro.engine.sharding import ShardedExecutor
from repro.errors import ConfigurationError


def _run(dataset, name, **config):
    return run_study(
        dataset.users,
        dataset.tweets,
        dataset.gazetteer,
        dataset_name=name,
        engine_config=EngineConfig(**config),
    )


def _echo_worker(chunk, payload):
    """Module-level (picklable) worker: returns its chunk unchanged."""
    return list(chunk)


class TestColumnarEquivalence:
    @pytest.mark.parametrize("dataset", ["korean", "ladygaga"])
    def test_byte_identical_serial(self, small_ctx, dataset):
        source = getattr(small_ctx, f"{dataset}_dataset")
        reference = _run(source, dataset, columnar=False)
        columnar = _run(source, dataset, columnar=True)
        assert study_to_json(columnar) == study_to_json(reference)
        assert study_digest(columnar) == study_digest(reference)

    @pytest.mark.parametrize("shards", [2, 4, 7])
    def test_byte_identical_sharded_serial_backend(self, small_ctx, shards):
        source = small_ctx.korean_dataset
        reference = _run(source, "korean", columnar=False)
        columnar = _run(source, "korean", columnar=True, shards=shards)
        assert study_to_json(columnar) == study_to_json(reference)

    def test_byte_identical_process_backend(self, small_ctx):
        source = small_ctx.ladygaga_dataset
        reference = _run(source, "ladygaga", columnar=False)
        columnar = _run(
            source, "ladygaga", columnar=True, shards=4, backend="process"
        )
        assert study_to_json(columnar) == study_to_json(reference)

    def test_process_single_shard_matches_serial(self, small_ctx):
        """The regression the pool fix pins: ``--backend process
        --shards 1`` answers inline and byte-identically to serial."""
        source = small_ctx.korean_dataset
        serial = _run(source, "korean", columnar=True)
        process = _run(
            source, "korean", columnar=True, shards=1, backend="process"
        )
        assert study_to_json(process) == study_to_json(serial)


class TestNoPoolRegression:
    def test_single_shard_never_forks(self):
        with ShardedExecutor(shards=1, backend="process") as executor:
            report = executor.run_shards([1, 2, 3], _echo_worker)
            assert report.results == [[1, 2, 3]]
            assert executor._pool is None

    def test_empty_workload_never_forks(self):
        with ShardedExecutor(shards=4, backend="process") as executor:
            report = executor.run_shards([], _echo_worker)
            assert report.results == [[], [], [], []]
            assert executor._pool is None

    def test_nonempty_multishard_workload_does_fork(self):
        with ShardedExecutor(shards=2, backend="process") as executor:
            report = executor.run_shards([1, 2, 3, 4], _echo_worker)
            assert report.results == [[1, 2], [3, 4]]
            assert executor._pool is not None


class TestColumnarConfig:
    def test_default_engine_config_columnar_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_COLUMNAR", "0")
        assert default_engine_config().columnar is False
        monkeypatch.setenv("REPRO_COLUMNAR", "on")
        assert default_engine_config().columnar is True
        monkeypatch.delenv("REPRO_COLUMNAR")
        assert default_engine_config().columnar is True

    def test_invalid_columnar_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_COLUMNAR", "sideways")
        with pytest.raises(ConfigurationError):
            default_engine_config()
