"""Property tests for the staged StudyEngine.

The load-bearing guarantee of the engine refactor: for any shard count
and backend, the staged engine's :class:`StudyResult` is byte-identical —
field by field, including the simulated API usage accounting — to what
the pre-refactor ``run_study`` monolith produced.  The monolith below is
a verbatim copy of the seed implementation, kept here as the reference.
"""

import pytest

from repro.analysis.correlation import StudyResult, run_study
from repro.datasets.refine import RefinementFunnel
from repro.engine import EngineConfig, RunContext, StudyEngine
from repro.geo.forward import GeocodeStatus, TextGeocoder
from repro.geo.reverse import ReverseGeocoder
from repro.grouping.stats import compute_group_statistics
from repro.grouping.topk import group_users
from repro.pipelines.study import run_korean_study
from repro.datasets.korean import KoreanDatasetConfig
from repro.errors import ConfigurationError
from repro.twitter.models import GeotaggedObservation
from repro.twitter.tweetgen import CollectionWindow
from repro.yahooapi.client import FailurePlan, PlaceFinderClient


def seed_run_study(users, tweets, gazetteer, dataset_name="dataset", min_gps_tweets=1):
    """The pre-refactor monolith, copied verbatim as the reference."""
    text_geocoder = TextGeocoder(gazetteer)
    placefinder = PlaceFinderClient(ReverseGeocoder(gazetteer), daily_quota=10**9)

    funnel = RefinementFunnel()
    funnel.crawled_users = len(users)
    funnel.total_tweets = len(tweets)
    funnel.gps_tweets = tweets.gps_count()

    profile_districts = {}
    for user in users:
        result = text_geocoder.geocode(user.profile_location)
        funnel.profile_status_counts[result.status.value] += 1
        if result.status is GeocodeStatus.RESOLVED and result.district is not None:
            profile_districts[user.user_id] = result.district
    funnel.well_defined_users = len(profile_districts)

    observations, study_users, kept = [], {}, {}
    for user_id, district in profile_districts.items():
        gps_tweets = [t for t in tweets.by_user(user_id) if t.has_gps]
        if len(gps_tweets) < min_gps_tweets:
            continue
        funnel.users_with_gps += 1
        user_rows = []
        for tweet in gps_tweets:
            path = placefinder.resolve_admin_path(tweet.coordinates)
            if path is None:
                funnel.unresolvable_gps_tweets += 1
                continue
            user_rows.append(
                GeotaggedObservation(
                    user_id=user_id,
                    profile_state=district.state,
                    profile_county=district.name,
                    tweet_state=path.state,
                    tweet_county=path.county,
                    timestamp_ms=tweet.created_at_ms,
                )
            )
        if not user_rows:
            continue
        observations.extend(user_rows)
        study_users[user_id] = users.get(user_id)
        kept[user_id] = district

    funnel.resolved_observations = len(observations)
    funnel.study_users = len(study_users)
    groupings = group_users(observations)
    statistics = compute_group_statistics(groupings.values())
    return StudyResult(
        dataset_name=dataset_name,
        funnel=funnel,
        observations=observations,
        groupings=groupings,
        statistics=statistics,
        profile_districts=kept,
        api_stats=placefinder.stats,
    )


def assert_results_identical(reference: StudyResult, candidate: StudyResult):
    """Field-by-field equality, including ordering of keyed collections."""
    assert candidate.funnel == reference.funnel
    assert candidate.observations == reference.observations
    assert list(candidate.groupings) == list(reference.groupings)
    assert candidate.groupings == reference.groupings
    assert candidate.statistics == reference.statistics
    assert list(candidate.profile_districts) == list(reference.profile_districts)
    assert candidate.profile_districts == reference.profile_districts
    assert candidate.api_stats == reference.api_stats


@pytest.fixture(scope="module")
def korean_reference(small_ctx):
    ds = small_ctx.korean_dataset
    return ds, seed_run_study(ds.users, ds.tweets, ds.gazetteer, "Korean")


@pytest.fixture(scope="module")
def ladygaga_reference(small_ctx):
    ds = small_ctx.ladygaga_dataset
    return ds, seed_run_study(ds.users, ds.tweets, ds.gazetteer, "Lady Gaga")


class TestSeedEquivalence:
    """Acceptance: engine ≡ seed monolith for shard counts {1, 2, 8}."""

    @pytest.mark.parametrize("shards", [1, 2, 8])
    def test_korean_serial(self, korean_reference, shards):
        ds, reference = korean_reference
        result = run_study(
            ds.users, ds.tweets, ds.gazetteer, "Korean",
            engine_config=EngineConfig(shards=shards, backend="serial"),
        )
        assert_results_identical(reference, result)

    @pytest.mark.parametrize("shards", [1, 2, 8])
    def test_ladygaga_serial(self, ladygaga_reference, shards):
        ds, reference = ladygaga_reference
        result = run_study(
            ds.users, ds.tweets, ds.gazetteer, "Lady Gaga",
            engine_config=EngineConfig(shards=shards, backend="serial"),
        )
        assert_results_identical(reference, result)

    @pytest.mark.parametrize("shards", [2, 8])
    def test_korean_process_pool(self, korean_reference, shards):
        ds, reference = korean_reference
        result = run_study(
            ds.users, ds.tweets, ds.gazetteer, "Korean",
            engine_config=EngineConfig(shards=shards, backend="process"),
        )
        assert_results_identical(reference, result)

    @pytest.mark.parametrize("shards", [2, 8])
    def test_ladygaga_process_pool(self, ladygaga_reference, shards):
        ds, reference = ladygaga_reference
        result = run_study(
            ds.users, ds.tweets, ds.gazetteer, "Lady Gaga",
            engine_config=EngineConfig(shards=shards, backend="process"),
        )
        assert_results_identical(reference, result)

    def test_injected_placefinder_stays_serial_and_identical(self, korean_reference):
        """A custom client (failure plan) forces the seed's serial loop."""
        ds, _ = korean_reference
        plan = FailurePlan(every_n=50)

        def monolith_with_plan():
            client = PlaceFinderClient(
                ReverseGeocoder(ds.gazetteer), daily_quota=10**9, failure_plan=plan
            )
            from repro.datasets.refine import RefinementPipeline

            pipeline = RefinementPipeline(
                text_geocoder=TextGeocoder(ds.gazetteer), placefinder=client
            )
            refined = pipeline.run(ds.users, ds.tweets)
            return refined, client.stats

        refined, stats = monolith_with_plan()
        client = PlaceFinderClient(
            ReverseGeocoder(ds.gazetteer), daily_quota=10**9, failure_plan=plan
        )
        result = run_study(
            ds.users, ds.tweets, ds.gazetteer, "Korean",
            placefinder=client,
            engine_config=EngineConfig(shards=8, backend="serial"),
        )
        assert result.funnel == refined.funnel
        assert result.observations == refined.observations
        assert result.api_stats == stats


class TestEngineInstrumentation:
    """Acceptance: one snapshot reports crawl, geocode, funnel, grouping,
    plus per-stage wall-time spans."""

    @pytest.fixture(scope="class")
    def output(self):
        config = KoreanDatasetConfig(
            population_size=400,
            crawl_limit=300,
            window=CollectionWindow(start_ms=1_314_835_200_000, days=10),
            seed=13,
        )
        return run_korean_study(config)

    def test_single_snapshot_covers_every_subsystem(self, output):
        snap = output.context.metrics.snapshot()
        # Crawl accounting re-registered from CrawlResult.
        assert snap["crawl.users"] == 300
        assert snap["crawl.api_calls"] > 0
        # Geocode accounting re-registered from ClientStats.
        assert snap["geocode.requests"] > 0
        assert "geocode.cache_hits" in snap
        assert "geocode.retries" in snap
        # Refinement funnel re-registered from RefinementFunnel.
        assert snap["funnel.crawled_users"] == 300
        assert snap["funnel.study_users"] == output.study.funnel.study_users
        # Grouping counters.
        assert snap["grouping.users"] == len(output.study.groupings)
        assert snap["grouping.observations"] == len(output.study.observations)
        # Per-stage wall time mirrored into the registry.
        for stage in ("refine", "profile_geocode", "reverse_geocode",
                      "grouping", "statistics"):
            assert snap[f"stage.{stage}.s"] >= 0.0

    def test_spans_cover_all_stages_in_order(self, output):
        # A sharded run (e.g. the CI REPRO_SHARDS soak) interleaves
        # per-shard spans (reverse_geocode.shard0, …); the top-level
        # stage spans must still appear exactly once each, in order.
        stages = ["refine", "profile_geocode", "reverse_geocode",
                  "grouping", "statistics"]
        names = [span.stage for span in output.context.spans]
        assert [name for name in names if name in stages] == stages
        reverse = next(
            span for span in output.context.spans
            if span.stage == "reverse_geocode"
        )
        assert reverse.items_out == len(output.study.observations)
        assert all(span.errors == 0 for span in output.context.spans)

    def test_last_run_exposes_context(self, small_ctx):
        ds = small_ctx.korean_dataset
        engine = StudyEngine(ds.gazetteer)
        context = RunContext(dataset_name="Korean", seed=7)
        result = engine.run(ds.users, ds.tweets, "Korean", context=context)
        assert engine.last_run is not None
        assert engine.last_run.result is result
        assert engine.last_run.context is context
        assert engine.last_run.context.trace()["seed"] == 7


class TestEngineConfigValidation:
    def test_bad_shards(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(shards=0)

    def test_bad_backend(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(backend="gpu")

    def test_bad_min_gps(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(min_gps_tweets=0)
