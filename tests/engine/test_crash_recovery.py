"""Crash-recovery property tests for the process backend.

The parallel layer's acceptance bar: a shard worker dying mid-run — once
(retry on a fresh pool) or repeatedly (serial fallback in the parent) —
must not change a single byte of the study result, on either dataset,
for any shard count.  ``WorkerFaultPlan`` injects the crashes
deterministically; byte-identity is checked field by field with the same
helper the seed-equivalence suite uses.
"""

import warnings

import pytest

from repro.analysis.correlation import run_study
from repro.engine import EngineConfig, RunContext, WorkerFaultPlan
from repro.geocode import cell_cache_path

from tests.engine.test_engine import assert_results_identical


@pytest.fixture(scope="module")
def references(small_ctx):
    """Serial-reference results for both datasets, keyed by name."""
    out = {}
    for name in ("korean", "ladygaga"):
        ds = getattr(small_ctx, f"{name}_dataset")
        out[name] = (ds, run_study(ds.users, ds.tweets, ds.gazetteer, name))
    return out


def _run_with_plan(ds, name, plan, shards, cache_dir=None):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return run_study(
            ds.users, ds.tweets, ds.gazetteer, name,
            engine_config=EngineConfig(
                shards=shards,
                backend="process",
                fault_plan=plan,
                cache_dir=str(cache_dir) if cache_dir else None,
            ),
        )


class TestCrashedWorkerStaysByteIdentical:
    @pytest.mark.parametrize("dataset", ["korean", "ladygaga"])
    @pytest.mark.parametrize("shards", [2, 8])
    def test_single_crash_retried(self, references, tmp_path, dataset, shards):
        ds, reference = references[dataset]
        plan = WorkerFaultPlan.arm(tmp_path / "token", shard=shards - 1, crashes=1)
        result = _run_with_plan(ds, dataset, plan, shards)
        assert_results_identical(reference, result)

    @pytest.mark.parametrize("dataset", ["korean", "ladygaga"])
    def test_repeated_crash_serial_fallback(self, references, tmp_path, dataset):
        ds, reference = references[dataset]
        plan = WorkerFaultPlan.arm(tmp_path / "token", shard=0, crashes=2)
        result = _run_with_plan(ds, dataset, plan, 4)
        assert_results_identical(reference, result)

    def test_crash_recovery_emits_actionable_warning(self, references, tmp_path):
        """Operators get a RuntimeWarning naming the path taken, never a
        raw BrokenProcessPool traceback."""
        ds, reference = references["korean"]
        plan = WorkerFaultPlan.arm(tmp_path / "token", shard=1, crashes=1)
        with pytest.warns(RuntimeWarning, match="retrying once"):
            result = run_study(
                ds.users, ds.tweets, ds.gazetteer, "korean",
                engine_config=EngineConfig(
                    shards=4, backend="process", fault_plan=plan
                ),
            )
        assert_results_identical(reference, result)

    def test_recovery_metrics_reported(self, references, tmp_path):
        ds, _ = references["korean"]
        plan = WorkerFaultPlan.arm(tmp_path / "token", shard=0, crashes=2)
        context = RunContext(dataset_name="korean")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            run_study(
                ds.users, ds.tweets, ds.gazetteer, "korean",
                engine_config=EngineConfig(
                    shards=4, backend="process", fault_plan=plan
                ),
                context=context,
            )
        snap = context.metrics.snapshot()
        assert snap["sharding.worker_retries"] >= 1
        assert snap["sharding.serial_fallbacks"] >= 1


class TestCrashLeavesCacheConsistent:
    def test_segments_merged_despite_crash(self, references, tmp_path):
        """A crashed shard's partial segment is reopened on retry; the
        merged shared cache ends up complete, segment files are reaped,
        and a second run resolves everything from the warm disk tier."""
        ds, reference = references["korean"]
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        plan = WorkerFaultPlan.arm(tmp_path / "token", shard=2, crashes=1)
        result = _run_with_plan(ds, "korean", plan, 4, cache_dir=cache_dir)
        assert_results_identical(reference, result)
        assert cell_cache_path(cache_dir).exists()
        assert not list(cache_dir.glob("geocells.shard-*.jsonl"))

        warm_context = RunContext(dataset_name="korean")
        warm = run_study(
            ds.users, ds.tweets, ds.gazetteer, "korean",
            engine_config=EngineConfig(
                shards=4, backend="process", cache_dir=str(cache_dir)
            ),
            context=warm_context,
        )
        assert_results_identical(reference, warm)
        snap = warm_context.metrics.snapshot()
        assert snap["geocode.tiers.backend.lookups"] == 0
