"""Unit tests for deterministic sharded execution."""

import pytest

from repro.engine.sharding import ShardedExecutor, partition
from repro.errors import ConfigurationError


def _double(chunk, payload):
    return [x * 2 for x in chunk]


def _with_payload(chunk, payload):
    return [x + payload for x in chunk]


class TestPartition:
    def test_concatenation_preserves_order(self):
        items = list(range(17))
        for shards in (1, 2, 3, 8, 17, 25):
            chunks = partition(items, shards)
            assert len(chunks) == shards
            assert [x for chunk in chunks for x in chunk] == items

    def test_near_equal_sizes(self):
        chunks = partition(list(range(10)), 3)
        assert sorted(len(c) for c in chunks) == [3, 3, 4]

    def test_more_shards_than_items_pads_empty(self):
        chunks = partition([1, 2], 5)
        assert chunks == [[1], [2], [], [], []]

    def test_invalid_shards_rejected(self):
        with pytest.raises(ConfigurationError):
            partition([1], 0)


class TestExecutor:
    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedExecutor(shards=0)
        with pytest.raises(ConfigurationError):
            ShardedExecutor(backend="threads")

    def test_serial_maps_in_shard_order(self):
        executor = ShardedExecutor(shards=3, backend="serial")
        results = executor.map_shards(list(range(7)), _double)
        assert [x for shard in results for x in shard] == [0, 2, 4, 6, 8, 10, 12]

    def test_process_backend_matches_serial(self):
        items = list(range(23))
        serial = ShardedExecutor(shards=4, backend="serial").map_shards(
            items, _with_payload, payload=100
        )
        process = ShardedExecutor(shards=4, backend="process").map_shards(
            items, _with_payload, payload=100
        )
        assert process == serial

    def test_empty_items(self):
        executor = ShardedExecutor(shards=3, backend="serial")
        assert executor.map_shards([], _double) == [[], [], []]
