"""Unit tests for deterministic sharded execution."""

import os

import pytest

from repro.engine.sharding import ShardedExecutor, WorkerFaultPlan, partition
from repro.errors import ConfigurationError, ShardExecutionError


def _double(chunk, payload):
    return [x * 2 for x in chunk]


def _with_payload(chunk, payload):
    return [x + payload for x in chunk]


def _chunk_pid(chunk, payload):
    return (list(chunk), os.getpid())


def _boom_on_seven(chunk, payload):
    if 7 in chunk:
        raise ValueError("cannot handle seven")
    return list(chunk)


class TestPartition:
    def test_concatenation_preserves_order(self):
        items = list(range(17))
        for shards in (1, 2, 3, 8, 17, 25):
            chunks = partition(items, shards)
            assert len(chunks) == shards
            assert [x for chunk in chunks for x in chunk] == items

    def test_near_equal_sizes(self):
        chunks = partition(list(range(10)), 3)
        assert sorted(len(c) for c in chunks) == [3, 3, 4]

    def test_more_shards_than_items_pads_empty(self):
        chunks = partition([1, 2], 5)
        assert chunks == [[1], [2], [], [], []]

    def test_invalid_shards_rejected(self):
        with pytest.raises(ConfigurationError):
            partition([1], 0)


class TestExecutor:
    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedExecutor(shards=0)
        with pytest.raises(ConfigurationError):
            ShardedExecutor(backend="threads")

    def test_serial_maps_in_shard_order(self):
        executor = ShardedExecutor(shards=3, backend="serial")
        results = executor.map_shards(list(range(7)), _double)
        assert [x for shard in results for x in shard] == [0, 2, 4, 6, 8, 10, 12]

    def test_process_backend_matches_serial(self):
        items = list(range(23))
        serial = ShardedExecutor(shards=4, backend="serial").map_shards(
            items, _with_payload, payload=100
        )
        process = ShardedExecutor(shards=4, backend="process").map_shards(
            items, _with_payload, payload=100
        )
        assert process == serial

    def test_empty_items(self):
        executor = ShardedExecutor(shards=3, backend="serial")
        assert executor.map_shards([], _double) == [[], [], []]

    def test_pool_capped_at_cpu_count(self):
        cpus = os.cpu_count() or 1
        assert ShardedExecutor(shards=64, backend="process").max_workers == min(
            64, cpus
        )
        # The explicit override still never exceeds the shard count.
        assert ShardedExecutor(shards=2, backend="process", max_workers=8).max_workers == 2
        with pytest.raises(ConfigurationError):
            ShardedExecutor(shards=2, backend="process", max_workers=0)

    def test_empty_shards_answered_in_parent(self):
        """Shards beyond the item count never reach the process pool."""
        with ShardedExecutor(shards=5, backend="process") as executor:
            report = executor.run_shards([1, 2], _chunk_pid)
        assert [r[0] for r in report.results] == [[1], [2], [], [], []]
        for outcome in report.outcomes[2:]:
            assert outcome.via == "inline-empty"
            assert outcome.attempts == 0
            assert outcome.result[1] == os.getpid()

    def test_shard_payloads_one_per_shard(self):
        executor = ShardedExecutor(shards=3, backend="serial")
        report = executor.run_shards(
            [1, 2, 3], _with_payload, shard_payloads=[10, 20, 30]
        )
        assert report.results == [[11], [22], [33]]
        with pytest.raises(ConfigurationError):
            executor.run_shards([1, 2, 3], _with_payload, shard_payloads=[10])

    def test_pool_reused_across_calls(self):
        with ShardedExecutor(shards=2, backend="process") as executor:
            first = executor.run_shards(list(range(4)), _chunk_pid)
            second = executor.run_shards(list(range(4)), _chunk_pid)
        assert {r[1] for r in first.results} == {r[1] for r in second.results}

    def test_close_is_idempotent(self):
        executor = ShardedExecutor(shards=2, backend="process")
        executor.map_shards([1, 2], _double)
        executor.close()
        executor.close()
        # A later call transparently re-forks a pool.
        assert executor.map_shards([1, 2], _double) == [[2], [4]]


class TestFailureSemantics:
    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_worker_exception_names_shard_and_range(self, backend):
        executor = ShardedExecutor(shards=4, backend=backend)
        with pytest.raises(ShardExecutionError) as excinfo:
            executor.run_shards(list(range(12)), _boom_on_seven)
        executor.close()
        err = excinfo.value
        assert err.shard_index == 2  # items [6:9]
        assert err.item_range == (6, 9)
        assert "shard 3/4" in str(err)
        assert "[6:9)" in str(err)
        assert "cannot handle seven" in str(err)

    def test_crashed_worker_retried_on_fresh_pool(self, tmp_path):
        plan = WorkerFaultPlan.arm(tmp_path / "token", shard=1, crashes=1)
        with ShardedExecutor(shards=2, backend="process", fault_plan=plan) as ex:
            with pytest.warns(RuntimeWarning, match="retrying once"):
                report = ex.run_shards(list(range(6)), _double)
        assert report.results == [[0, 2, 4], [6, 8, 10]]
        assert report.worker_retries >= 1
        assert report.serial_fallbacks == 0
        assert report.outcomes[1].via == "retry"

    def test_repeated_crash_falls_back_to_serial(self, tmp_path):
        plan = WorkerFaultPlan.arm(tmp_path / "token", shard=0, crashes=2)
        with ShardedExecutor(shards=2, backend="process", fault_plan=plan) as ex:
            with pytest.warns(RuntimeWarning) as warned:
                report = ex.run_shards(list(range(6)), _double)
        messages = [str(w.message) for w in warned]
        assert any("retrying once" in m for m in messages)
        assert any("serially in the parent" in m for m in messages)
        assert report.results == [[0, 2, 4], [6, 8, 10]]
        assert report.serial_fallbacks >= 1
        assert report.outcomes[0].via == "serial-fallback"
        assert report.outcomes[0].attempts == 3

    def test_fault_plan_never_kills_parent(self, tmp_path):
        """The serial fallback runs the faulting shard in the parent."""
        plan = WorkerFaultPlan.arm(tmp_path / "token", shard=0, crashes=99)
        with ShardedExecutor(shards=2, backend="process", fault_plan=plan) as ex:
            with pytest.warns(RuntimeWarning):
                report = ex.run_shards(list(range(6)), _double)
        assert report.results == [[0, 2, 4], [6, 8, 10]]
