"""Unit tests for the metrics registry and run context."""

import pytest

from repro.engine.context import RunContext, StageSpan, render_trace
from repro.engine.metrics import MetricsRegistry
from repro.errors import ConfigurationError


class TestCounters:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        assert registry.counter("geocode.requests") == 1
        assert registry.counter("geocode.requests", 4) == 5
        assert registry.snapshot()["geocode.requests"] == 5

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("stats.total_users", 10)
        registry.gauge("stats.total_users", 7)
        assert registry.snapshot()["stats.total_users"] == 7

    def test_timer_accumulates(self):
        registry = MetricsRegistry()
        with registry.timer("stage.x.s"):
            pass
        with registry.timer("stage.x.s"):
            pass
        assert registry.snapshot()["stage.x.s"] >= 0.0

    def test_snapshot_is_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        assert list(registry.snapshot()) == ["a", "b"]


class TestSources:
    def test_source_flattens_nested_mappings(self):
        registry = MetricsRegistry()
        registry.register_source(
            "funnel", lambda: {"users": 3, "status": {"vague": 2}}
        )
        snap = registry.snapshot()
        assert snap["funnel.users"] == 3
        assert snap["funnel.status.vague"] == 2

    def test_source_is_live(self):
        registry = MetricsRegistry()
        box = {"n": 1}
        registry.register_source("live", lambda: box)
        box["n"] = 9
        assert registry.snapshot()["live.n"] == 9

    def test_reregistering_prefix_replaces(self):
        registry = MetricsRegistry()
        registry.register_source("p", lambda: {"a": 1})
        registry.register_source("p", lambda: {"a": 2})
        assert registry.snapshot()["p.a"] == 2

    def test_empty_prefix_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().register_source("", dict)


class TestMerge:
    def test_counters_and_timers_sum_gauges_overwrite(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c", 2)
        b.counter("c", 3)
        a.add_time("t.s", 1.0)
        b.add_time("t.s", 0.5)
        a.gauge("g", 1)
        b.gauge("g", 7)
        a.merge(b)
        snap = a.snapshot()
        assert snap["c"] == 5
        assert snap["t.s"] == pytest.approx(1.5)
        assert snap["g"] == 7


class TestRunContext:
    def test_stage_span_records_items_and_duration(self):
        context = RunContext(dataset_name="t")
        with context.stage("demo") as span:
            span.items_in = 10
            span.items_out = 4
        assert len(context.spans) == 1
        recorded = context.spans[0]
        assert recorded.items_in == 10 and recorded.items_out == 4
        assert recorded.duration_s > 0
        assert "stage.demo.s" in context.metrics.snapshot()

    def test_escaping_exception_counts_as_error(self):
        context = RunContext()
        with pytest.raises(ValueError):
            with context.stage("boom"):
                raise ValueError("x")
        assert context.spans[0].errors == 1
        assert context.spans[0].duration_s > 0

    def test_trace_and_render(self):
        context = RunContext(dataset_name="Korean", seed=7)
        with context.stage("demo") as span:
            span.items_in = 1
        context.metrics.counter("grouping.users", 3)
        trace = context.trace()
        assert trace["dataset"] == "Korean"
        assert trace["seed"] == 7
        assert trace["spans"][0]["stage"] == "demo"
        text = render_trace(context)
        assert "Korean" in text and "demo" in text and "grouping.users" in text

    def test_open_span_duration_is_zero(self):
        span = StageSpan(stage="open", started_s=1.0)
        assert span.duration_s == 0.0

    def test_render_aggregates_repeated_stages(self):
        """A streaming run emits thousands of same-named spans; the trace
        collapses them to one row carrying run count and summed items."""
        context = RunContext(dataset_name="stream")
        for items in (10, 20, 30):
            with context.stage("stream.batch") as span:
                span.items_in = items
                span.items_out = items // 2
        text = render_trace(context)
        rows = [
            line for line in text.splitlines()
            if line.split() and line.split()[0] == "stream.batch"
        ]
        assert len(rows) == 1
        columns = rows[0].split()
        assert columns[1] == "3"  # runs
        assert columns[3] == "60" and columns[4] == "30"  # summed in/out

    def test_render_reports_api_client_retries(self):
        context = RunContext(dataset_name="t")
        context.metrics.counter("geocode.retries", 5)
        context.metrics.counter("geocode.retry_exhausted", 1)
        text = render_trace(context)
        assert "api client: retries=5 retry_exhausted=1" in text

    def test_render_omits_api_client_line_without_counters(self):
        context = RunContext(dataset_name="t")
        assert "api client:" not in render_trace(context)


class TestLatencyHistogramEpochs:
    """The window partitions on the observation epoch: percentiles never
    mix samples recorded under different snapshot generations."""

    def test_epoch_change_resets_window_keeps_lifetime(self):
        from repro.engine.metrics import LatencyHistogram

        histogram = LatencyHistogram(window=16)
        for _ in range(10):
            histogram.observe(10.0, epoch=1)
        assert histogram.percentile(50) == 10.0
        histogram.observe(1.0, epoch=2)
        # Only the post-swap sample is in the window now.
        assert histogram.percentile(50) == 1.0
        assert histogram.percentile(99) == 1.0
        assert histogram.epoch == 2
        # Lifetime accounting spans both epochs.
        assert histogram.count == 11
        assert histogram.total == 101.0
        assert histogram.max == 10.0

    def test_same_epoch_accumulates(self):
        from repro.engine.metrics import LatencyHistogram

        histogram = LatencyHistogram(window=8)
        histogram.observe(1.0, epoch=3)
        histogram.observe(3.0, epoch=3)
        assert histogram.percentile(99) == 3.0
        assert histogram.count == 2

    def test_merge_same_epoch_concatenates(self):
        from repro.engine.metrics import LatencyHistogram

        left = LatencyHistogram(window=8)
        right = LatencyHistogram(window=8)
        left.observe(1.0)
        right.observe(5.0)
        left.merge(right)
        assert left.count == 2
        assert left.percentile(99) == 5.0

    def test_merge_newer_epoch_replaces_window(self):
        from repro.engine.metrics import LatencyHistogram

        stale = LatencyHistogram(window=8)
        fresh = LatencyHistogram(window=8)
        for _ in range(5):
            stale.observe(10.0, epoch=1)
        fresh.observe(1.0, epoch=2)
        stale.merge(fresh)
        assert stale.epoch == 2
        assert stale.percentile(99) == 1.0
        assert stale.count == 6
        assert stale.max == 10.0

    def test_merge_older_epoch_drops_its_window(self):
        from repro.engine.metrics import LatencyHistogram

        fresh = LatencyHistogram(window=8)
        stale = LatencyHistogram(window=8)
        fresh.observe(1.0, epoch=2)
        for _ in range(5):
            stale.observe(10.0, epoch=1)
        fresh.merge(stale)
        assert fresh.epoch == 2
        assert fresh.percentile(99) == 1.0
        assert fresh.count == 6
        assert fresh.max == 10.0
