"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

FAST = ["--population", "400", "--users", "300", "--days", "10", "--seed", "13"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_id_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "E99"])

    def test_defaults(self):
        args = build_parser().parse_args(["study"])
        assert args.dataset == "korean"
        assert args.seed == 7


class TestStudy:
    def test_korean_study_output(self, capsys):
        assert main(["study", "--dataset", "korean", *FAST]) == 0
        out = capsys.readouterr().out
        assert "Refinement funnel" in out
        assert "Number of users in each group" in out
        assert "reliability weight factors" in out

    def test_ladygaga_study_output(self, capsys):
        assert main(["study", "--dataset", "ladygaga", *FAST]) == 0
        out = capsys.readouterr().out
        assert "Refinement funnel" in out

    def test_study_metrics_flag_prints_trace(self, capsys):
        assert main(["study", "--dataset", "korean", "--metrics", *FAST]) == 0
        out = capsys.readouterr().out
        assert "Run trace — korean" in out
        assert "geocode.requests" in out
        assert "funnel.study_users" in out
        assert "reverse_geocode" in out

    def test_study_sharded_matches_serial(self, capsys):
        assert main(["study", "--dataset", "korean", *FAST]) == 0
        serial = capsys.readouterr().out
        assert main(["study", "--dataset", "korean", "--shards", "4", *FAST]) == 0
        sharded = capsys.readouterr().out
        assert sharded == serial


class TestEngineTrace:
    def test_trace_output(self, capsys):
        assert main(["engine", "trace", *FAST]) == 0
        out = capsys.readouterr().out
        assert "Run trace — korean" in out
        assert "per-stage spans:" in out
        for stage in ("refine", "profile_geocode", "reverse_geocode",
                      "grouping", "statistics"):
            assert stage in out
        assert "crawl.users" in out
        assert "geocode.requests" in out
        assert "grouping.users" in out

    def test_trace_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["engine"])


class TestDataset:
    def test_writes_jsonl(self, capsys, tmp_path):
        out_dir = tmp_path / "data"
        code = main(["dataset", "--dataset", "korean", "--out", str(out_dir), *FAST])
        assert code == 0
        assert (out_dir / "korean_users.jsonl").exists()
        assert (out_dir / "korean_tweets.jsonl").exists()
        out = capsys.readouterr().out
        assert "wrote 300 users" in out


class TestStudySaveAndReport:
    def test_save_then_report(self, capsys, tmp_path):
        saved = tmp_path / "study.json"
        code = main(["study", "--dataset", "korean", "--save", str(saved), *FAST])
        assert code == 0
        assert saved.exists()
        capsys.readouterr()

        code = main(["report", "--study", str(saved)])
        assert code == 0
        out = capsys.readouterr().out
        assert "loaded study 'korean'" in out
        assert "bootstrap confidence intervals" in out
        assert "Split-half stability" in out
        # At this tiny scale the regional table may fall below min_users;
        # either the table or the explicit notice must be printed.
        assert "by profile region" in out or "too few users per region" in out

    def test_report_missing_file_fails_cleanly(self, capsys, tmp_path):
        code = main(["report", "--study", str(tmp_path / "missing.json")])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestExperiment:
    def test_renders_artefact(self, capsys, small_ctx):
        assert main(["experiment", "E2", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "Number of users in each group" in out


class TestLocalize:
    def test_localization_table(self, capsys):
        code = main(
            ["localize", "--population", "900", "--users", "700", "--days", "20",
             "--seed", "13", "--gps-rate", "0.3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "estimator x weighting scheme" in out
        assert "learned weight factors" in out
