"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, package_version

FAST = ["--population", "400", "--users", "300", "--days", "10", "--seed", "13"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_id_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "E99"])

    def test_defaults(self):
        args = build_parser().parse_args(["study"])
        assert args.dataset == "korean"
        assert args.seed == 7


class TestVersion:
    def test_version_flag_prints_and_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.strip() == f"repro {package_version()}"

    def test_version_matches_pyproject(self):
        """The version comes from package metadata, not a drifting copy."""
        import tomllib
        from pathlib import Path

        import repro.cli as cli_module

        pyproject = Path(cli_module.__file__).resolve().parents[2] / "pyproject.toml"
        with pyproject.open("rb") as handle:
            declared = tomllib.load(handle)["project"]["version"]
        assert package_version() == declared


class TestUnknownCommand:
    def test_unknown_subcommand_exits_2_with_one_line_hint(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        lines = [line for line in err.splitlines() if line.strip()]
        assert len(lines) == 1
        assert "invalid choice" in lines[0]
        assert "repro --help" in lines[0]
        assert "usage:" not in err

    def test_unknown_option_exits_2_with_one_line_hint(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["study", "--frobnicate"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        lines = [line for line in err.splitlines() if line.strip()]
        assert len(lines) == 1
        assert "repro --help" in lines[0]


class TestStudy:
    def test_korean_study_output(self, capsys):
        assert main(["study", "--dataset", "korean", *FAST]) == 0
        out = capsys.readouterr().out
        assert "Refinement funnel" in out
        assert "Number of users in each group" in out
        assert "reliability weight factors" in out

    def test_ladygaga_study_output(self, capsys):
        assert main(["study", "--dataset", "ladygaga", *FAST]) == 0
        out = capsys.readouterr().out
        assert "Refinement funnel" in out

    def test_study_metrics_flag_prints_trace(self, capsys):
        assert main(["study", "--dataset", "korean", "--metrics", *FAST]) == 0
        out = capsys.readouterr().out
        assert "Run trace — korean" in out
        assert "geocode.requests" in out
        assert "funnel.study_users" in out
        assert "reverse_geocode" in out

    def test_study_metrics_exposes_geocode_tiers(self, capsys):
        """`repro study --metrics` surfaces the geocode service's tier
        hit/miss counters and cache sizes (snapshot keys + summary line)."""
        assert main(["study", "--dataset", "korean", "--metrics", *FAST]) == 0
        out = capsys.readouterr().out
        for key in (
            "geocode.tiers.l1.hits",
            "geocode.tiers.l1.misses",
            "geocode.tiers.disk.hits",
            "geocode.tiers.disk.misses",
            "geocode.tiers.backend.lookups",
            "geocode.tiers.cache_size",
            "geocode.tiers.client_cache_size",
        ):
            assert key in out
        assert "geocode tiers: l1" in out

    def test_study_cache_dir_warm_run_matches(self, capsys, tmp_path):
        """A second run over a shared --cache-dir reproduces the study
        byte for byte from the warm disk tier."""
        cache = str(tmp_path / "geocache")
        assert main(["study", "--dataset", "korean", "--cache-dir", cache, *FAST]) == 0
        cold = capsys.readouterr().out
        assert main(["study", "--dataset", "korean", "--cache-dir", cache, *FAST]) == 0
        warm = capsys.readouterr().out
        assert warm == cold

    def test_study_sharded_matches_serial(self, capsys):
        assert main(["study", "--dataset", "korean", *FAST]) == 0
        serial = capsys.readouterr().out
        assert main(["study", "--dataset", "korean", "--shards", "4", *FAST]) == 0
        sharded = capsys.readouterr().out
        assert sharded == serial

    def test_study_process_backend_matches_serial(self, capsys):
        assert main(["study", "--dataset", "korean", *FAST]) == 0
        serial = capsys.readouterr().out
        assert main(["study", "--dataset", "korean", "--backend", "process",
                     "--shards", "4", *FAST]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_study_no_columnar_matches_default(self, capsys):
        """--no-columnar falls back to per-user dict merging; the output
        must not move by a byte."""
        assert main(["study", "--dataset", "korean", *FAST]) == 0
        columnar = capsys.readouterr().out
        assert main(["study", "--dataset", "korean", "--no-columnar", *FAST]) == 0
        dicts = capsys.readouterr().out
        assert dicts == columnar

    def test_columnar_defaults_on(self):
        args = build_parser().parse_args(["study", "--dataset", "korean"])
        assert args.columnar is True
        args = build_parser().parse_args(
            ["study", "--dataset", "korean", "--no-columnar"]
        )
        assert args.columnar is False

    def test_shard_failure_exits_code_4(self, capsys, monkeypatch):
        """A worker exception surfaces as exit code 4 with the shard and
        item range named — never a traceback."""
        from repro.errors import ShardExecutionError

        def boom(*args, **kwargs):
            raise ShardExecutionError(2, 4, (6, 9), ValueError("bad row"))

        monkeypatch.setattr("repro.cli.run_study", boom)
        code = main(["study", "--dataset", "korean", *FAST])
        assert code == 4
        err = capsys.readouterr().err
        assert "shard 3/4" in err
        assert "[6:9)" in err
        assert "bad row" in err
        assert "Traceback" not in err


class TestEngineTrace:
    def test_trace_output(self, capsys):
        assert main(["engine", "trace", *FAST]) == 0
        out = capsys.readouterr().out
        assert "Run trace — korean" in out
        assert "per-stage spans:" in out
        for stage in ("refine", "profile_geocode", "reverse_geocode",
                      "grouping", "statistics"):
            assert stage in out
        assert "crawl.users" in out
        assert "geocode.requests" in out
        assert "grouping.users" in out

    def test_trace_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["engine"])


class TestDataset:
    def test_writes_jsonl(self, capsys, tmp_path):
        out_dir = tmp_path / "data"
        code = main(["dataset", "--dataset", "korean", "--out", str(out_dir), *FAST])
        assert code == 0
        assert (out_dir / "korean_users.jsonl").exists()
        assert (out_dir / "korean_tweets.jsonl").exists()
        out = capsys.readouterr().out
        assert "wrote 300 users" in out


class TestStudySaveAndReport:
    def test_save_then_report(self, capsys, tmp_path):
        saved = tmp_path / "study.json"
        code = main(["study", "--dataset", "korean", "--save", str(saved), *FAST])
        assert code == 0
        assert saved.exists()
        capsys.readouterr()

        code = main(["report", "--study", str(saved)])
        assert code == 0
        out = capsys.readouterr().out
        assert "loaded study 'korean'" in out
        assert "bootstrap confidence intervals" in out
        assert "Split-half stability" in out
        # At this tiny scale the regional table may fall below min_users;
        # either the table or the explicit notice must be printed.
        assert "by profile region" in out or "too few users per region" in out

    def test_report_missing_file_fails_cleanly(self, capsys, tmp_path):
        code = main(["report", "--study", str(tmp_path / "missing.json")])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestExperiment:
    def test_renders_artefact(self, capsys, small_ctx):
        assert main(["experiment", "E2", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "Number of users in each group" in out


class TestLocalize:
    def test_localization_table(self, capsys):
        code = main(
            ["localize", "--population", "900", "--users", "700", "--days", "20",
             "--seed", "13", "--gps-rate", "0.3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "estimator x weighting scheme" in out
        assert "learned weight factors" in out


class TestServe:
    def test_serve_requires_snapshot(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["serve"])
        assert excinfo.value.code == 2

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--snapshot", "s.json"])
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.rate == 0.0
        assert args.gazetteer == "korean"

    def test_serve_loads_snapshot_and_prints_banner(
        self, capsys, tmp_path, monkeypatch
    ):
        """`repro serve` loads the saved study, binds, prints the banner,
        and exits cleanly once serve_forever returns."""
        from repro.serving import StudyServer

        saved = tmp_path / "study.json"
        assert main(["study", "--dataset", "korean",
                     "--save", str(saved), *FAST]) == 0
        capsys.readouterr()
        monkeypatch.setattr(StudyServer, "serve_forever", lambda self: None)
        code = main(["serve", "--snapshot", str(saved), "--port", "0",
                     "--rate", "100", "--burst", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "serving 'korean'" in out
        assert "snapshot version" in out
        assert "/lookup" in out and "/admin/reload" in out
        assert "admission: 100.0/s sustained, burst 5" in out

    def test_serve_missing_snapshot_file_fails_cleanly(self, capsys, tmp_path):
        # Unusable on-disk state at boot is the `stream --resume`
        # convention: exit 3, one line, no traceback.
        code = main(["serve", "--snapshot", str(tmp_path / "absent.json")])
        assert code == 3
        err = capsys.readouterr().err
        assert "error:" in err
        assert err.count("\n") == 1
        assert "Traceback" not in err

    def test_serve_corrupt_snapshot_fails_cleanly(self, capsys, tmp_path):
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("{ this is not a study", encoding="utf-8")
        code = main(["serve", "--snapshot", str(corrupt)])
        assert code == 3
        err = capsys.readouterr().err
        assert "error: cannot serve:" in err
        assert err.count("\n") == 1
        assert "Traceback" not in err

    def test_serve_truncated_snapshot_fails_cleanly(self, capsys, tmp_path):
        """A study file cut mid-write (half its bytes) must fail exactly
        like any other unusable boot state: exit 3, one line."""
        saved = tmp_path / "study.json"
        assert main(["study", "--dataset", "korean",
                     "--save", str(saved), *FAST]) == 0
        capsys.readouterr()
        text = saved.read_text(encoding="utf-8")
        saved.write_text(text[: len(text) // 2], encoding="utf-8")
        code = main(["serve", "--snapshot", str(saved)])
        assert code == 3
        err = capsys.readouterr().err
        assert "error: cannot serve:" in err
        assert err.count("\n") == 1
        assert "Traceback" not in err


class TestLive:
    def test_live_defaults(self):
        args = build_parser().parse_args(["live"])
        assert args.dataset == "ladygaga"
        assert args.cadence == 8
        assert args.cadence_seconds == 0.0
        assert args.on_exhausted == "serve"
        assert args.port == 8080

    def test_live_streams_swaps_and_exits(self, capsys, tmp_path):
        """`repro live --on-exhausted exit` pumps the whole firehose,
        publishes snapshots on cadence, and reports the final generation."""
        code = main(
            ["live", "--dataset", "korean", "--port", "0",
             "--state-dir", str(tmp_path / "state"),
             "--cadence", "50", "--on-exhausted", "exit", *FAST]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serving 'korean'" in out
        assert "live: cadence 50 batches" in out
        assert "stream exhausted at offset" in out
        assert "snapshot swaps" in out
        assert "served version:" in out

    def test_live_resume_over_bad_state_fails_cleanly(self, capsys, tmp_path):
        state = tmp_path / "state"
        state.mkdir()
        (state / "checkpoints.jsonl").write_text(
            "not a checkpoint\n", encoding="utf-8"
        )
        code = main(
            ["live", "--dataset", "korean", "--port", "0",
             "--state-dir", str(state), "--resume",
             "--on-exhausted", "exit", *FAST]
        )
        assert code == 3
        err = capsys.readouterr().err
        assert "error: cannot resume:" in err
        assert "Traceback" not in err


class TestStream:
    def test_stream_exhausts_and_reports(self, capsys, tmp_path):
        code = main(
            ["stream", "--dataset", "korean",
             "--state-dir", str(tmp_path / "state"), *FAST]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stream exhausted at offset" in out
        assert "(0 dropped by backpressure)" in out
        assert "state digest:" in out
        assert "Number of users in each group" in out

    def test_stream_report_matches_batch_study(self, capsys, tmp_path):
        """The end-of-stream report sections are the batch study's, verbatim."""
        assert main(["study", "--dataset", "korean", *FAST]) == 0
        study_out = capsys.readouterr().out
        code = main(
            ["stream", "--dataset", "korean",
             "--state-dir", str(tmp_path / "state"), *FAST]
        )
        assert code == 0
        stream_out = capsys.readouterr().out
        # Everything after the stream header (ending at the digest line)
        # must appear verbatim in the study output.
        report = stream_out.split("…\n", 1)[1].strip()
        assert report
        assert report in study_out

    def test_stream_pause_then_resume(self, capsys, tmp_path):
        state = str(tmp_path / "state")
        code = main(
            ["stream", "--dataset", "korean", "--state-dir", state,
             "--max-batches", "3", *FAST]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stream paused at offset" in out
        assert "resume with: repro stream --resume" in out
        code = main(
            ["stream", "--dataset", "korean", "--state-dir", state,
             "--resume", *FAST]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "resuming from checkpoint: offset" in out
        assert "stream exhausted at offset" in out

    def test_stream_metrics_flag_prints_trace(self, capsys, tmp_path):
        code = main(
            ["stream", "--dataset", "korean", "--state-dir", str(tmp_path / "s"),
             "--metrics", *FAST]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stream.batch" in out
        assert "stream.queue.depth" in out
        assert "stream.checkpoint.age_batches" in out

    def test_resume_missing_checkpoint_exits_distinctly(self, capsys, tmp_path):
        """--resume with no checkpoint log: exit code 3 and a one-line
        actionable message, no traceback."""
        code = main(
            ["stream", "--dataset", "korean",
             "--state-dir", str(tmp_path / "never-ran"), "--resume", *FAST]
        )
        assert code == 3
        err = capsys.readouterr().err
        lines = [line for line in err.splitlines() if line.strip()]
        assert len(lines) == 1
        assert "cannot resume" in lines[0]
        assert "no checkpoint log" in lines[0]
        assert "--resume" in lines[0]  # tells the operator what to do
        assert "Traceback" not in err

    def test_resume_truncated_checkpoint_exits_distinctly(self, capsys, tmp_path):
        """--resume against a checkpoint log whose only record was torn
        mid-write: exit code 3 and a one-line message, no traceback."""
        state = tmp_path / "state"
        state.mkdir()
        (state / "checkpoints.jsonl").write_text('{"offset": 12, "wal_rec')
        code = main(
            ["stream", "--dataset", "korean",
             "--state-dir", str(state), "--resume", *FAST]
        )
        assert code == 3
        err = capsys.readouterr().err
        lines = [line for line in err.splitlines() if line.strip()]
        assert len(lines) == 1
        assert "cannot resume" in lines[0]
        assert "no complete checkpoint" in lines[0]
        assert "Traceback" not in err

    def test_stream_save_writes_loadable_study(self, capsys, tmp_path):
        saved = tmp_path / "stream_study.json"
        code = main(
            ["stream", "--dataset", "korean", "--state-dir", str(tmp_path / "s"),
             "--save", str(saved), *FAST]
        )
        assert code == 0
        assert saved.exists()
        capsys.readouterr()
        assert main(["report", "--study", str(saved)]) == 0
        assert "loaded study 'korean'" in capsys.readouterr().out
