"""Unit tests for the experiment registry."""

import pytest

from repro.errors import ConfigurationError
from repro.pipelines.experiments import EXPERIMENTS, get_context, run_experiment


class TestRegistry:
    def test_all_design_ids_present(self):
        assert set(EXPERIMENTS) == {
            "E1", "E2", "E3", "E4", "E5", "E6+E7", "E8", "E9", "E10",
        }

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("E99", scale="small")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            get_context("galactic")

    def test_context_memoised(self, small_ctx):
        assert get_context("small") is small_ctx


class TestArtefacts:
    @pytest.mark.parametrize(
        "experiment_id,expected_fragment",
        [
            ("E1", "Average number of tweet locations"),
            ("E2", "Number of users in each group"),
            ("E3", "Number of tweets in each group"),
            ("E4", "Korean vs Lady Gaga"),
            ("E5", "Average number of tweet locations"),
            ("E6+E7", "<- matched"),
            ("E8", "Dataset summary"),
            ("E9", "Refinement funnel"),
        ],
    )
    def test_experiment_renders(self, small_ctx, experiment_id, expected_fragment):
        text = run_experiment(experiment_id, scale="small")
        assert expected_fragment in text

    def test_e10_renders_and_reports_weights(self, small_ctx):
        text = run_experiment("E10", scale="small")
        assert "estimator" in text
        assert "learned weight factors" in text
        assert "group_matched_share" in text
