"""Shared live-pipeline fixtures: a full stream-to-serving harness over
either corpus, a swap-verifying snapshot store, and the byte-equality
assertion the subsystem's core invariant is stated in."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import pytest

from repro.analysis.incremental import IncrementalStudyAccumulator
from repro.engine.context import RunContext
from repro.live import DeltaSnapshotBuilder, LiveConfig, LiveStudyPipeline
from repro.serving.http import encode_body
from repro.serving.state import ServingSnapshot, SnapshotStore
from repro.streaming import (
    BackpressurePolicy,
    BoundedTweetQueue,
    CheckpointLog,
    FirehoseSource,
    StreamConfig,
    StreamConsumer,
    StreamPump,
)


def assert_snapshots_identical(live: ServingSnapshot, batch: ServingSnapshot):
    """Assert two serving snapshots are byte-identical, field by field.

    Response bodies are compared through :func:`~repro.serving.http
    .encode_body` — the canonical wire encoding — so "equal" here means a
    client could not distinguish the two snapshots by any query.
    """
    assert live.digest == batch.digest
    assert live.version == batch.version
    assert live.dataset_name == batch.dataset_name
    assert sorted(live.users) == sorted(batch.users)
    for uid, body in batch.users.items():
        assert encode_body(live.users[uid]) == encode_body(body), uid
    assert sorted(live.regions) == sorted(batch.regions)
    for state, body in batch.regions.items():
        assert encode_body(live.regions[state]) == encode_body(body), state
    assert live.reliability == batch.reliability
    assert live.user_weights == batch.user_weights
    assert live.statistics == batch.statistics
    assert live.funnel == batch.funnel
    assert live.total_users == batch.total_users
    assert live.total_tweets == batch.total_tweets
    assert live.matched_keys == batch.matched_keys
    assert live.interner.digest() == batch.interner.digest()


def batch_snapshot_of(
    accumulator: IncrementalStudyAccumulator, dataset_name: str
) -> ServingSnapshot:
    """The batch-built snapshot of the accumulator's current state —
    the right-hand side of the swap-equivalence invariant."""
    return ServingSnapshot.from_study(accumulator.snapshot(dataset_name))


class VerifyingStore(SnapshotStore):
    """A snapshot store that runs a check on every snapshot swapped in.

    The check runs *before* publication, on the pipeline's thread, so a
    violated invariant fails the test at the exact swap that broke it.
    """

    def __init__(self, snapshot: ServingSnapshot, verify: Callable):
        super().__init__(snapshot)
        self._verify = verify
        self.verified = 0

    def swap(self, snapshot: ServingSnapshot) -> ServingSnapshot:
        """Check ``snapshot`` against the invariant, then publish it."""
        self._verify(snapshot)
        self.verified += 1
        return super().swap(snapshot)


@dataclass
class LiveHarness:
    """Everything a test needs to drive and inspect one live pipeline."""

    accumulator: IncrementalStudyAccumulator
    consumer: StreamConsumer
    pump: StreamPump
    builder: DeltaSnapshotBuilder
    store: SnapshotStore
    pipeline: LiveStudyPipeline
    queue: BoundedTweetQueue
    offset: int

    def run(self, max_batches: int | None = None):
        """Pump from the resumed offset; returns the stream snapshot."""
        return self.pipeline.run(
            start_offset=self.offset, max_batches=max_batches
        )


def make_live(
    dataset,
    dataset_name,
    state_dir,
    *,
    config: LiveConfig | None = None,
    policy=BackpressurePolicy.BLOCK,
    batch_size=128,
    capacity=512,
    drain_every=64,
    checkpoint_every=3,
    resume=False,
    verify=None,
    clock=None,
    sleep=None,
) -> LiveHarness:
    """Wire up one complete live pipeline over ``dataset``.

    ``verify`` is an optional ``(snapshot, accumulator) -> None`` check
    installed on every swap via :class:`VerifyingStore`; ``clock`` and
    ``sleep`` pass through to :class:`~repro.live.pipeline
    .LiveStudyPipeline` for deterministic cadence tests.
    """
    accumulator = IncrementalStudyAccumulator(dataset.gazetteer, dataset.users)
    log = CheckpointLog(state_dir / "checkpoints.jsonl")
    wal_path = state_dir / "wal.jsonl"
    if resume:
        consumer, offset = StreamConsumer.resume(
            accumulator, wal_path, log, checkpoint_every
        )
    else:
        consumer = StreamConsumer(accumulator, wal_path, log, checkpoint_every)
        offset = 0
    source = FirehoseSource(dataset.tweets, dataset.users)
    queue = BoundedTweetQueue(capacity, policy)
    stream_config = StreamConfig(
        batch_size=batch_size,
        capacity=capacity,
        policy=policy,
        drain_every=drain_every,
        checkpoint_every=checkpoint_every,
    )
    pump = StreamPump(
        source, queue, consumer, stream_config,
        RunContext(dataset_name=dataset_name),
    )
    builder = DeltaSnapshotBuilder(accumulator, dataset_name=dataset_name)
    boot = builder.build()
    if verify is not None:
        store = VerifyingStore(boot, lambda snap: verify(snap, accumulator))
    else:
        store = SnapshotStore(boot)
    kwargs = {}
    if clock is not None:
        kwargs["clock"] = clock
    if sleep is not None:
        kwargs["sleep"] = sleep
    pipeline = LiveStudyPipeline(pump, builder, store, config, **kwargs)
    return LiveHarness(
        accumulator=accumulator,
        consumer=consumer,
        pump=pump,
        builder=builder,
        store=store,
        pipeline=pipeline,
        queue=queue,
        offset=offset,
    )


@pytest.fixture(params=("korean", "ladygaga"))
def corpus(request, small_ctx):
    """Either study corpus: ``(dataset, canonical name, batch study)``.

    The name is the study's own ``dataset_name``, so digests computed
    over live state are directly comparable to the batch study's.
    """
    if request.param == "korean":
        study = small_ctx.korean_study
        dataset = small_ctx.korean_dataset
    else:
        study = small_ctx.ladygaga_study
        dataset = small_ctx.ladygaga_dataset
    return dataset, study.dataset_name, study
