"""LiveStudyPipeline: cadence triggers, gauges, failure containment.

Cadence and lag are driven through the injectable clock/sleep pair, so
every timing assertion here is deterministic — no real sleeping, no
flaky wall-clock thresholds.
"""

from types import SimpleNamespace

import pytest

from repro.errors import ConfigurationError
from repro.geo.gazetteer import Gazetteer
from repro.geo.point import GeoPoint
from repro.live import LiveConfig
from repro.storage.tweetstore import TweetStore
from repro.storage.userstore import UserStore
from repro.twitter.models import Tweet

from tests.live.conftest import (
    assert_snapshots_identical,
    batch_snapshot_of,
    make_live,
)
from tests.streaming.conftest import make_user

_DISTRICT_POINTS = {
    "Gangnam-gu, Seoul": GeoPoint(37.517, 127.047),
    "Jongno-gu, Seoul": GeoPoint(37.573, 126.979),
    "Mapo-gu, Seoul": GeoPoint(37.566, 126.902),
}
_PROFILES = list(_DISTRICT_POINTS) + ["somewhere vague", ""]


class FakeClock:
    """A monotonic clock tests advance by hand (or through ``sleep``)."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        """Advancing on sleep lets ``pace_s`` double as the tick width."""
        self.now += seconds


@pytest.fixture(scope="module")
def micro():
    """A 5-user, 40-tweet corpus: big enough to swap, instant to build."""
    gazetteer = Gazetteer.korean()
    users = UserStore()
    for user_id in range(1, 6):
        users.insert(make_user(user_id, _PROFILES[(user_id - 1) % len(_PROFILES)]))
    tweets = TweetStore()
    points = list(_DISTRICT_POINTS.values())
    for i in range(40):
        tweets.insert(
            Tweet(tweet_id=100 + i, user_id=1 + (i * 3) % 5,
                  created_at_ms=1_000_000 + i * 60_000,
                  text=f"tweet {i}",
                  coordinates=points[i % 3] if i % 4 else None)
        )
    return SimpleNamespace(gazetteer=gazetteer, users=users, tweets=tweets)


def micro_live(micro, tmp_path, config, **kwargs):
    """A live harness over the micro corpus: 4-tweet batches, 10 total."""
    return make_live(
        micro, "micro", tmp_path,
        config=config, batch_size=4, drain_every=4, checkpoint_every=2,
        **kwargs,
    )


def metric(harness, name):
    """One value from the pipeline's metrics registry snapshot."""
    return harness.pipeline.metrics.snapshot()[name]


class TestBatchCadence:
    def test_swaps_every_n_batches_plus_final(self, micro, tmp_path):
        harness = micro_live(micro, tmp_path, LiveConfig(cadence_batches=3))
        snapshot = harness.run()
        assert snapshot.exhausted
        assert snapshot.batches == 10
        # Ticks at batches 3, 6, 9, then the forced end-of-stream build.
        assert metric(harness, "live.builds") == 4
        assert harness.store.generation == 1 + metric(harness, "live.swaps")
        assert_snapshots_identical(
            harness.store.current(), batch_snapshot_of(harness.accumulator, "micro")
        )

    def test_cadence_larger_than_stream_still_converges(self, micro, tmp_path):
        """The forced final build makes the served state converge even
        when no cadence window ever filled."""
        harness = micro_live(micro, tmp_path, LiveConfig(cadence_batches=1000))
        harness.run()
        assert metric(harness, "live.builds") == 1
        assert harness.store.generation == 2
        assert_snapshots_identical(
            harness.store.current(), batch_snapshot_of(harness.accumulator, "micro")
        )

    def test_gauges_are_published(self, micro, tmp_path):
        harness = micro_live(micro, tmp_path, LiveConfig(cadence_batches=3))
        harness.run()
        snapshot = harness.pipeline.metrics.snapshot()
        for name in (
            "live.swap_lag_seconds",
            "live.snapshot_age_batches",
            "live.dirty_users",
            "live.builds",
            "live.build_failures",
            "live.swaps",
            "live.swaps_skipped",
            "live.swap_lag.p95",
        ):
            assert name in snapshot, name
        # The forced final build leaves nothing stale and nothing dirty.
        assert snapshot["live.snapshot_age_batches"] == 0
        assert snapshot["live.dirty_users"] == 0


class TestWallClockCadence:
    def test_seconds_trigger_with_advancing_clock(self, micro, tmp_path):
        """pace_s=1 + a sleep-advanced fake clock = one second per batch,
        so cadence_seconds=4 must fire roughly every 4 batches."""
        clock = FakeClock()
        harness = micro_live(
            micro, tmp_path,
            LiveConfig(cadence_batches=None, cadence_seconds=4.0, pace_s=1.0),
            clock=clock, sleep=clock.sleep,
        )
        harness.run()
        assert metric(harness, "live.builds") >= 3  # ~10s of stream / 4s
        assert_snapshots_identical(
            harness.store.current(), batch_snapshot_of(harness.accumulator, "micro")
        )

    def test_frozen_clock_never_fires_mid_stream(self, micro, tmp_path):
        clock = FakeClock()
        harness = micro_live(
            micro, tmp_path,
            LiveConfig(cadence_batches=None, cadence_seconds=4.0),
            clock=clock,
        )
        harness.run()
        # Only the forced end-of-stream build ever ran.
        assert metric(harness, "live.builds") == 1
        assert harness.store.generation == 2


class TestDigestShortCircuit:
    def test_content_equal_build_skips_the_swap(self, micro, tmp_path):
        harness = micro_live(micro, tmp_path, LiveConfig(cadence_batches=3))
        snapshot = harness.run()
        generation = harness.store.generation
        # Re-running over the exhausted stream folds nothing: the final
        # forced build is content-equal and must not bump the generation.
        harness.pipeline.run(start_offset=snapshot.offset)
        assert harness.store.generation == generation
        assert metric(harness, "live.swaps_skipped") == 1


class TestBuildFailure:
    def test_failed_builds_keep_serving_and_then_converge(
        self, micro, tmp_path, monkeypatch
    ):
        harness = micro_live(micro, tmp_path, LiveConfig(cadence_batches=3))
        boot = harness.store.current()
        original = harness.builder.build
        monkeypatch.setattr(
            harness.builder, "build",
            lambda: (_ for _ in ()).throw(RuntimeError("build crash")),
        )
        snapshot = harness.run()
        assert metric(harness, "live.build_failures") == 4
        assert metric(harness, "live.swaps") == 0
        # The boot snapshot never stopped serving.
        assert harness.store.generation == 1
        assert harness.store.current() is boot
        # Recovery: the builder kept every dirty user, so one good build
        # catches the served state all the way up.
        monkeypatch.setattr(harness.builder, "build", original)
        harness.pipeline.run(start_offset=snapshot.offset)
        assert harness.store.generation == 2
        assert_snapshots_identical(
            harness.store.current(), batch_snapshot_of(harness.accumulator, "micro")
        )


class TestLiveConfigValidation:
    def test_both_triggers_disabled_rejected(self):
        with pytest.raises(ConfigurationError):
            LiveConfig(cadence_batches=None, cadence_seconds=None)

    @pytest.mark.parametrize("batches", (0, -1))
    def test_non_positive_batch_cadence_rejected(self, batches):
        with pytest.raises(ConfigurationError):
            LiveConfig(cadence_batches=batches)

    @pytest.mark.parametrize("seconds", (0.0, -2.5))
    def test_non_positive_seconds_cadence_rejected(self, seconds):
        with pytest.raises(ConfigurationError):
            LiveConfig(cadence_batches=None, cadence_seconds=seconds)

    def test_negative_pace_rejected(self):
        with pytest.raises(ConfigurationError):
            LiveConfig(pace_s=-0.1)
