"""The live subsystem's acceptance property: every swap serves the batch.

At **every** snapshot swap — not just end of stream — the published
:class:`~repro.serving.state.ServingSnapshot` must be byte-identical to
``ServingSnapshot.from_study(accumulator.snapshot())`` at that instant.
The :class:`~tests.live.conftest.VerifyingStore` enforces the invariant
inside :meth:`~repro.serving.state.SnapshotStore.swap` itself, so a
violation fails at the exact publish that broke it.  Coverage spans both
corpora, all three backpressure policies (including lossy overflow),
crash-resume at several cut points, and the process engine backend.
"""

import pytest

from repro.analysis.correlation import run_study
from repro.analysis.serialization import study_digest
from repro.engine import EngineConfig
from repro.live import LiveConfig
from repro.serving.state import ServingSnapshot
from repro.streaming import BackpressurePolicy

from tests.live.conftest import (
    assert_snapshots_identical,
    batch_snapshot_of,
    make_live,
)

POLICIES = tuple(BackpressurePolicy)
CRASH_POINTS = (1, 5, 23)
CADENCE = LiveConfig(cadence_batches=8)


def verify_against_batch(dataset_name):
    """The per-swap invariant check ``make_live`` installs on the store."""

    def check(snapshot, accumulator):
        assert_snapshots_identical(
            snapshot, batch_snapshot_of(accumulator, dataset_name)
        )

    return check


class TestEverySwap:
    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.value)
    def test_each_policy_serves_the_batch_at_every_swap(
        self, corpus, policy, tmp_path
    ):
        dataset, name, study = corpus
        harness = make_live(
            dataset, name, tmp_path,
            config=CADENCE, policy=policy,
            verify=verify_against_batch(name),
        )
        snapshot = harness.run()
        assert snapshot.exhausted
        assert harness.store.verified > 0
        assert harness.queue.stats.dropped == 0  # ample capacity: lossless
        # Lossless end state: the served snapshot IS the batch study's.
        assert harness.store.current().digest == study_digest(study)

    def test_lossy_overflow_still_serves_its_own_ingested_state(
        self, small_ctx, tmp_path
    ):
        """Under DROP_OLDEST with a tight queue the accumulator sees a
        strict subset of the corpus — and every swap must still serve
        exactly that subset's batch snapshot."""
        dataset = small_ctx.ladygaga_dataset
        harness = make_live(
            dataset, "Lady Gaga", tmp_path,
            config=CADENCE,
            policy=BackpressurePolicy.DROP_OLDEST,
            capacity=8, batch_size=8, drain_every=40,
            verify=verify_against_batch("Lady Gaga"),
        )
        snapshot = harness.run()
        assert snapshot.exhausted
        assert harness.queue.stats.dropped > 0
        assert harness.store.verified > 0

    def test_shed_overflow_still_serves_its_own_ingested_state(
        self, small_ctx, tmp_path
    ):
        dataset = small_ctx.ladygaga_dataset
        harness = make_live(
            dataset, "Lady Gaga", tmp_path,
            config=CADENCE,
            policy=BackpressurePolicy.SHED,
            capacity=8, batch_size=8, drain_every=40,
            verify=verify_against_batch("Lady Gaga"),
        )
        harness.run()
        assert harness.queue.stats.dropped > 0
        assert harness.store.verified > 0


class TestCrashResume:
    @pytest.mark.parametrize("crash_after", CRASH_POINTS)
    def test_resume_swaps_stay_batch_identical(
        self, corpus, crash_after, tmp_path
    ):
        """Crash mid-stream, resume with a *cold* builder over the
        journal-rebuilt accumulator: every swap of the resumed run —
        including the first, which replays the recovered state — must
        serve the batch snapshot, and the end state must be the batch
        study's."""
        dataset, name, study = corpus
        partial = make_live(
            dataset, name, tmp_path,
            config=CADENCE, verify=verify_against_batch(name),
        ).run(max_batches=crash_after)
        assert not partial.exhausted
        resumed = make_live(
            dataset, name, tmp_path,
            config=CADENCE, resume=True,
            verify=verify_against_batch(name),
        )
        final = resumed.run()
        assert final.exhausted
        assert resumed.store.current().digest == study_digest(study)


class TestGenerationAccounting:
    def test_generations_count_boot_plus_swaps(self, small_ctx, tmp_path):
        dataset = small_ctx.korean_dataset
        harness = make_live(
            dataset, "korean", tmp_path,
            config=CADENCE, verify=verify_against_batch("korean"),
        )
        harness.run()
        assert harness.store.generation == 1 + harness.store.verified


class TestProcessBackend:
    @pytest.mark.slow
    def test_final_swap_matches_process_sharded_batch(self, small_ctx, tmp_path):
        """The served end state equals a batch study computed on the
        process backend with 4 shards — the live path is backend-blind
        because sharded batch runs are byte-identical to serial ones."""
        dataset = small_ctx.korean_dataset
        harness = make_live(dataset, "korean", tmp_path, config=CADENCE)
        harness.run()
        batch = run_study(
            dataset.users, dataset.tweets, dataset.gazetteer,
            dataset_name="korean",
            engine_config=EngineConfig(shards=4, backend="process"),
        )
        assert_snapshots_identical(
            harness.store.current(), ServingSnapshot.from_study(batch)
        )
