"""The fragment cache's entitlement: composed text == ``study_to_json``.

The delta builder stamps ``digest[:16]`` as a snapshot's public version,
where the digest is computed from cached per-user fragments instead of a
full re-serialisation.  That is only sound if the composition is *exact*
— character-for-character equal to the canonical document — which is
what this module proves on both study corpora and on the empty study.
"""

import hashlib
import json

from repro.analysis.serialization import study_digest, study_to_json
from repro.columnar.interner import study_interner
from repro.live import fragments


def fragments_of(study):
    """Render every fragment of ``study`` the way the delta builder does.

    Returns ``(observation_fragments, merged_entries, district_entries,
    interner_items)`` in the canonical document order.
    """
    per_user = {}
    for row in study.observations:
        per_user.setdefault(row.user_id, []).append(row)
    observation_fragments = [
        fragments.observation_fragment(rows) for rows in per_user.values()
    ]
    merged_entries = [
        fragments.merged_entry(uid, [row.render() for row in grouping.merged])
        for uid, grouping in study.groupings.items()
    ]
    district_entries = [
        fragments.district_entry(uid, district)
        for uid, district in study.profile_districts.items()
    ]
    interner_items = [
        fragments.render(text)
        for text in study_interner(
            study.observations, study.profile_districts
        ).to_lines()
    ]
    return observation_fragments, merged_entries, district_entries, interner_items


def compose(study):
    """The full composed document text for ``study``."""
    obs, merged, districts, interner_items = fragments_of(study)
    return "".join(
        fragments.compose_study_document(
            study.dataset_name,
            study.funnel.as_dict(),
            obs,
            merged,
            districts,
            study.api_stats.snapshot(),
            interner_items,
        )
    )


class TestExactComposition:
    def test_composed_text_is_study_to_json(self, corpus):
        """Character-for-character equality on a real study corpus."""
        _, _, study = corpus
        assert compose(study) == study_to_json(study)

    def test_document_digest_is_study_digest(self, corpus):
        _, _, study = corpus
        obs, merged, districts, interner_items = fragments_of(study)
        digest = fragments.document_digest(
            fragments.compose_study_document(
                study.dataset_name,
                study.funnel.as_dict(),
                obs,
                merged,
                districts,
                study.api_stats.snapshot(),
                interner_items,
            )
        )
        assert digest == study_digest(study)

    def test_digest_never_materialises_the_document(self):
        """``document_digest`` hashes chunk by chunk — equal to hashing
        the joined text, by construction."""
        chunks = ["abc", "", "déf", "\n x"]
        joined = hashlib.sha256("".join(chunks).encode("utf-8")).hexdigest()
        assert fragments.document_digest(iter(chunks)) == joined


class TestEmptyDocument:
    def test_empty_study_shape(self):
        """No users at all: arrays render ``[]``, objects ``{}``, and the
        text still equals the one ``json.dumps`` would produce."""
        funnel = {"total": 0, "kept": 0}
        api = {"calls": 0}
        composed = "".join(
            fragments.compose_study_document("empty", funnel, [], [], [], api, [])
        )
        document = {
            "format_version": 2,
            "dataset_name": "empty",
            "funnel": funnel,
            "observations": [],
            "merged": {},
            "profile_districts": {},
            "api_stats": api,
            "interner": [],
        }
        assert composed == json.dumps(document, ensure_ascii=False, indent=1)


class TestEmbedding:
    def test_embed_matches_json_dumps_nesting(self):
        """A standalone rendering embedded at depth d equals the text
        ``json.dumps`` produces for the same value nested d levels deep."""
        value = {"a": [1, 2, {"b": "seoul 서울"}], "c": None}
        wrapped = json.dumps({"x": value}, ensure_ascii=False, indent=1)
        embedded = '{\n "x": ' + fragments.embed(fragments.render(value), 1) + "\n}"
        assert embedded == wrapped

    def test_embed_leaves_first_line_alone(self):
        text = fragments.render([1, 2])
        assert fragments.embed(text, 3).splitlines()[0] == text.splitlines()[0]

    def test_render_is_canonical(self):
        assert fragments.render("서울") == '"서울"'  # ensure_ascii=False
        assert fragments.render({"b": 1, "a": 2}) == '{\n "b": 1,\n "a": 2\n}'
