"""DeltaSnapshotBuilder: full build ≡ ``from_study``, deltas track folds.

The builder's contract is that every ``build()`` — cold or incremental —
produces the same :class:`~repro.serving.state.ServingSnapshot` a batch
``ServingSnapshot.from_study(accumulator.snapshot())`` would, and that a
failed build loses no dirty users.
"""

import pytest

from repro.analysis.incremental import IncrementalStudyAccumulator
from repro.analysis.serialization import study_digest
from repro.live import DeltaSnapshotBuilder
from repro.serving.state import ServingSnapshot

from tests.live.conftest import assert_snapshots_identical, batch_snapshot_of


def folded(dataset, dataset_name, count=None):
    """An accumulator with ``count`` tweets folded (all by default) and a
    builder over it."""
    accumulator = IncrementalStudyAccumulator(dataset.gazetteer, dataset.users)
    tweets = list(dataset.tweets)
    accumulator.fold(tweets if count is None else tweets[:count])
    return accumulator, DeltaSnapshotBuilder(accumulator, dataset_name=dataset_name)


class TestColdBuild:
    def test_cold_build_is_the_batch_snapshot(self, corpus):
        """A cold builder has no caches: its first build is the
        degenerate all-dirty case and must equal the batch build of the
        batch study — digest and all."""
        dataset, name, study = corpus
        accumulator, builder = folded(dataset, name)
        live = builder.build()
        assert_snapshots_identical(live, ServingSnapshot.from_study(study))
        assert live.digest == study_digest(study)

    def test_empty_accumulator_builds_an_empty_snapshot(self, small_ctx):
        dataset = small_ctx.korean_dataset
        accumulator = IncrementalStudyAccumulator(dataset.gazetteer, dataset.users)
        builder = DeltaSnapshotBuilder(accumulator, dataset_name="korean")
        live = builder.build()
        assert live.total_users == 0
        assert live.users == {}
        assert_snapshots_identical(live, batch_snapshot_of(accumulator, "korean"))


class TestIncrementalBuild:
    def test_every_mid_stream_build_matches_batch(self, corpus):
        """Fold the corpus in five chunks, building after each: every
        intermediate snapshot must be byte-identical to the batch build
        over the accumulator's state at that instant."""
        dataset, name, _ = corpus
        accumulator = IncrementalStudyAccumulator(dataset.gazetteer, dataset.users)
        builder = DeltaSnapshotBuilder(accumulator, dataset_name=name)
        tweets = list(dataset.tweets)
        step = max(1, len(tweets) // 5)
        for start in range(0, len(tweets), step):
            accumulator.fold(tweets[start : start + step])
            live = builder.build()
            assert_snapshots_identical(live, batch_snapshot_of(accumulator, name))

    def test_rebuild_without_new_folds_is_content_equal(self, small_ctx):
        dataset = small_ctx.korean_dataset
        _, builder = folded(dataset, "korean", count=500)
        first = builder.build()
        second = builder.build()
        assert second.digest == first.digest
        assert builder.builds == 2

    def test_dirty_accounting(self, small_ctx):
        """Folds mark only touched users dirty; a successful build drains
        both the accumulator's dirty set and the builder's pending pool."""
        dataset = small_ctx.korean_dataset
        accumulator, builder = folded(dataset, "korean", count=400)
        assert accumulator.dirty_count > 0
        builder.build()
        assert accumulator.dirty_count == 0
        assert builder.pending_count == 0
        tail = list(dataset.tweets)[400:600]
        accumulator.fold(tail)
        touched = {tweet.user_id for tweet in tail}
        assert 0 < accumulator.dirty_count <= len(touched)


class TestFailureContainment:
    def test_failed_build_loses_no_dirt(self, corpus, monkeypatch):
        """An exception mid-build leaves the claimed users pending; the
        next build retries them and converges to the batch snapshot."""
        dataset, name, _ = corpus
        accumulator = IncrementalStudyAccumulator(dataset.gazetteer, dataset.users)
        builder = DeltaSnapshotBuilder(accumulator, dataset_name=name)
        tweets = list(dataset.tweets)
        accumulator.fold(tweets[: len(tweets) // 2])
        builder.build()
        accumulator.fold(tweets[len(tweets) // 2 :])

        def explode(uid):
            raise RuntimeError("mid-build crash")

        monkeypatch.setattr(builder, "_rebuild_user", explode)
        with pytest.raises(RuntimeError):
            builder.build()
        assert builder.pending_count > 0
        monkeypatch.undo()
        live = builder.build()
        assert builder.pending_count == 0
        assert_snapshots_identical(live, batch_snapshot_of(accumulator, name))

    def test_builds_counter_skips_failures(self, small_ctx, monkeypatch):
        dataset = small_ctx.korean_dataset
        _, builder = folded(dataset, "korean", count=300)
        monkeypatch.setattr(
            builder, "_rebuild_user",
            lambda uid: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        with pytest.raises(RuntimeError):
            builder.build()
        assert builder.builds == 0
        monkeypatch.undo()
        builder.build()
        assert builder.builds == 1
