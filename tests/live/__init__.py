"""Tests for the live pipeline: delta builds, exact fragments, hot swaps."""
