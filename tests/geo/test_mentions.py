"""Unit tests for the place-mention extractor (third spatial attribute)."""

import pytest

from repro.geo.gazetteer import Gazetteer
from repro.geo.mentions import PlaceMentionExtractor


@pytest.fixture(scope="module")
def extractor():
    return PlaceMentionExtractor(Gazetteer.korean())


class TestExtraction:
    def test_single_unambiguous_mention(self, extractor):
        mentions = extractor.extract("having coffee in Yangcheon-gu today")
        assert len(mentions) == 1
        assert mentions[0].district.key() == ("Seoul", "Yangcheon-gu")
        assert mentions[0].matched_alias == "yangcheon-gu"

    def test_ambiguous_name_skipped(self, extractor):
        # "Jung-gu" maps to six cities: unusable as a mention.
        assert extractor.extract("walking around Jung-gu tonight") == []

    def test_multiple_mentions(self, extractor):
        mentions = extractor.extract("from Bucheon to Suwon-si by bus")
        keys = {m.district.key() for m in mentions}
        assert ("Gyeonggi-do", "Bucheon-si") in keys
        assert ("Gyeonggi-do", "Suwon-si") in keys

    def test_mentions_ordered_by_position(self, extractor):
        mentions = extractor.extract("gangnam then haeundae tomorrow")
        assert [m.district.name for m in mentions] == ["Gangnam-gu", "Haeundae-gu"]
        assert mentions[0].token_start < mentions[1].token_start

    def test_no_mentions(self, extractor):
        assert extractor.extract("just a normal day, nothing here") == []
        assert extractor.extract("") == []

    def test_longest_match_wins(self, extractor):
        # "gold coast australia" must not fire on sub-tokens; test the
        # Korean analogue: "yangcheon-gu" not double-counted as
        # "yangcheon" + leftover.
        mentions = extractor.extract("in yangcheon-gu now")
        assert len(mentions) == 1
        assert mentions[0].token_count == 1

    def test_first_helper(self, extractor):
        assert extractor.first("nothing to see") is None
        mention = extractor.first("dinner at hongdae tonight")
        assert mention is not None
        assert mention.district.key() == ("Seoul", "Mapo-gu")  # hongdae alias

    def test_case_and_decoration_insensitive(self, extractor):
        mentions = extractor.extract("HAEUNDAE!!! ♥")
        assert len(mentions) == 1
        assert mentions[0].district.name == "Haeundae-gu"
