"""Sanity checks over the embedded Korean gazetteer data."""

from repro.geo.korea import (
    COUNTRY,
    METROPOLITAN_STATES,
    PROVINCE_STATES,
    STATE_ALIASES,
    korean_districts,
)
from repro.geo.region import DistrictKind


def test_every_district_in_a_known_state():
    states = METROPOLITAN_STATES | PROVINCE_STATES
    for district in korean_districts():
        assert district.state in states, district.name


def test_unique_state_county_keys():
    keys = [d.key() for d in korean_districts()]
    assert len(keys) == len(set(keys))


def test_seoul_has_25_gu():
    seoul = [d for d in korean_districts() if d.state == "Seoul"]
    assert len(seoul) == 25
    assert all(d.kind is DistrictKind.DISTRICT for d in seoul)


def test_all_metropolitan_states_present():
    present = {d.state for d in korean_districts()}
    assert METROPOLITAN_STATES <= present


def test_coordinates_inside_korea():
    for district in korean_districts():
        assert 33.0 <= district.center.lat <= 38.7, district.name
        assert 124.5 <= district.center.lon <= 130.0, district.name


def test_country_and_weights(korean_gazetteer):
    for district in korean_gazetteer:
        assert district.country == COUNTRY
        assert district.population_weight > 0
        assert district.radius_km > 0


def test_aliases_are_lowercase_and_include_name():
    for district in korean_districts():
        assert district.name.lower() in district.aliases
        assert all(a == a.lower() for a in district.aliases)


def test_metro_kinds_match_state_type():
    for district in korean_districts():
        if district.state in METROPOLITAN_STATES:
            assert district.kind in (DistrictKind.DISTRICT, DistrictKind.COUNTY)
        else:
            assert district.kind in (DistrictKind.CITY, DistrictKind.COUNTY)


def test_state_aliases_point_at_real_states():
    states = METROPOLITAN_STATES | PROVINCE_STATES
    for alias, canonical in STATE_ALIASES.items():
        assert alias == alias.lower()
        assert canonical in states


def test_paper_example_districts_exist(korean_gazetteer):
    # The paper's Tables I-II use these exact districts.
    assert korean_gazetteer.find("Seoul", "Yangcheon-gu") is not None
    assert korean_gazetteer.find("Seoul", "Seodaemun-gu") is not None
    assert korean_gazetteer.find("Seoul", "Jung-gu") is not None
    assert korean_gazetteer.find("Gyeonggi-do", "Uiwang-si") is not None
    assert korean_gazetteer.find("Gyeonggi-do", "Seongnam-si") is not None
