"""Unit tests for the administrative-region model."""

import pytest

from repro.errors import InvalidCoordinateError
from repro.geo.point import GeoPoint
from repro.geo.region import (
    AdminPath,
    BoundingBox,
    District,
    DistrictKind,
)


@pytest.fixture
def yangcheon() -> District:
    return District(
        name="Yangcheon-gu",
        state="Seoul",
        country="South Korea",
        kind=DistrictKind.DISTRICT,
        center=GeoPoint(37.517, 126.867),
        radius_km=3.2,
        aliases=("yangcheon", "yangcheon-gu"),
    )


class TestAdminPath:
    def test_key_is_state_county(self):
        path = AdminPath("South Korea", "Seoul", "Jung-gu", "Myeong-dong")
        assert path.key() == ("Seoul", "Jung-gu")

    def test_str_with_and_without_town(self):
        with_town = AdminPath("KR", "Seoul", "Jung-gu", "Myeong-dong")
        without = AdminPath("KR", "Seoul", "Jung-gu")
        assert "Myeong-dong" in str(with_town)
        assert str(without).endswith("Jung-gu")


class TestBoundingBox:
    def test_contains_inclusive(self):
        box = BoundingBox(0.0, 0.0, 10.0, 10.0)
        assert box.contains(GeoPoint(0.0, 0.0))
        assert box.contains(GeoPoint(10.0, 10.0))
        assert box.contains(GeoPoint(5.0, 5.0))
        assert not box.contains(GeoPoint(10.1, 5.0))
        assert not box.contains(GeoPoint(5.0, -0.1))

    def test_invalid_boxes_rejected(self):
        with pytest.raises(InvalidCoordinateError):
            BoundingBox(10.0, 0.0, 0.0, 10.0)
        with pytest.raises(InvalidCoordinateError):
            BoundingBox(0.0, 10.0, 10.0, 0.0)

    def test_center(self):
        box = BoundingBox(0.0, 0.0, 10.0, 20.0)
        assert box.center() == GeoPoint(5.0, 10.0)

    def test_expanded_clamps_to_globe(self):
        box = BoundingBox(-89.0, -179.0, 89.0, 179.0).expanded(5.0)
        assert box.south == -90.0
        assert box.north == 90.0
        assert box.west == -180.0
        assert box.east == 180.0

    def test_around_contains_center_and_radius(self):
        center = GeoPoint(37.5, 127.0)
        box = BoundingBox.around(center, half_side_km=10.0)
        assert box.contains(center)
        # Points just inside the half-side must be contained.
        assert box.contains(center.destination(0.0, 9.0))
        assert box.contains(center.destination(90.0, 9.0))
        # Points well beyond must not.
        assert not box.contains(center.destination(0.0, 25.0))


class TestDistrict:
    def test_admin_path(self, yangcheon):
        path = yangcheon.admin_path(town="Mok-dong")
        assert path.country == "South Korea"
        assert path.state == "Seoul"
        assert path.county == "Yangcheon-gu"
        assert path.town == "Mok-dong"

    def test_key(self, yangcheon):
        assert yangcheon.key() == ("Seoul", "Yangcheon-gu")

    def test_contains_by_radius(self, yangcheon):
        assert yangcheon.contains(yangcheon.center)
        near = yangcheon.center.destination(45.0, 2.0)
        far = yangcheon.center.destination(45.0, 10.0)
        assert yangcheon.contains(near)
        assert not yangcheon.contains(far)
        assert yangcheon.contains(far, slack=4.0)
