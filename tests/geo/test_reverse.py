"""Unit and property tests for reverse geocoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeocodingError
from repro.geo.gazetteer import Gazetteer
from repro.geo.point import GeoPoint
from repro.geo.reverse import ReverseGeocoder


@pytest.fixture(scope="module")
def reverse():
    return ReverseGeocoder(Gazetteer.korean())


class TestResolve:
    def test_resolves_centroid_to_its_district(self, reverse, korean_gazetteer):
        district = korean_gazetteer.get("Seoul", "Yangcheon-gu")
        result = reverse.resolve(district.center)
        assert result.path.key() == ("Seoul", "Yangcheon-gu")
        assert result.path.country == "South Korea"
        assert result.distance_km == pytest.approx(0.0, abs=1e-9)

    def test_quality_87_inside_district(self, reverse, korean_gazetteer):
        district = korean_gazetteer.get("Seoul", "Gangnam-gu")
        inside = district.center.destination(90.0, district.radius_km * 0.5)
        assert reverse.resolve(inside).quality == 87

    def test_quality_decays_outside_radius(self, reverse, korean_gazetteer):
        # A point between districts still resolves, at lower quality, as
        # long as it is beyond its nearest district's nominal radius.
        district = korean_gazetteer.get("Jeju-do", "Jeju-si")
        outside = district.center.destination(180.0, district.radius_km * 1.6)
        result = reverse.resolve(outside)
        if result.distance_km > result.district.radius_km:
            assert result.quality < 87
        assert result.quality >= 10

    def test_far_ocean_point_raises(self, reverse):
        with pytest.raises(GeocodingError):
            reverse.resolve(GeoPoint(30.0, 140.0))

    def test_try_resolve_returns_none(self, reverse):
        assert reverse.try_resolve(GeoPoint(30.0, 140.0)) is None
        assert reverse.try_resolve(GeoPoint(37.5, 127.0)) is not None

    def test_max_distance_config(self, korean_gazetteer):
        tight = ReverseGeocoder(korean_gazetteer, max_distance_km=1.0)
        district = korean_gazetteer.get("Seoul", "Gangnam-gu")
        off_center = district.center.destination(0.0, 2.0)
        with pytest.raises(GeocodingError):
            tight.resolve(off_center)


class TestGeneratorConsistency:
    """Consistency contracts between the tweet generator's scatter and
    reverse geocoding.

    In dense metropolitan areas a fix near a district's edge may resolve
    to a *neighbouring* district (real reverse geocoders blur boundaries
    the same way), so the exact round trip is only guaranteed for
    isolated districts; everywhere else the resolved district must simply
    be at least as close as the true one.
    """

    @given(
        st.floats(min_value=0.0, max_value=359.9),
        st.floats(min_value=0.0, max_value=0.8),
    )
    @settings(max_examples=60, deadline=None)
    def test_isolated_district_roundtrip(self, bearing, radial_fraction):
        gazetteer = Gazetteer.korean()
        reverse = ReverseGeocoder(gazetteer)
        district = gazetteer.get("Jeju-do", "Jeju-si")
        point = district.center.destination(
            bearing, district.radius_km * radial_fraction
        )
        # Jeju-si's only neighbour is Seogwipo-si, ~27 km away — well
        # beyond the 0.8 * radius scatter the tweet generator uses.
        assert reverse.resolve(point).path.key() == ("Jeju-do", "Jeju-si")

    @given(
        st.sampled_from([
            ("Seoul", "Yangcheon-gu"), ("Seoul", "Nowon-gu"),
            ("Busan", "Haeundae-gu"), ("Gyeonggi-do", "Suwon-si"),
            ("Daejeon", "Yuseong-gu"),
        ]),
        st.floats(min_value=0.0, max_value=359.9),
        st.floats(min_value=0.0, max_value=0.8),
    )
    @settings(max_examples=100, deadline=None)
    def test_scatter_resolves_no_farther_than_home(self, key, bearing, radial_fraction):
        gazetteer = Gazetteer.korean()
        reverse = ReverseGeocoder(gazetteer)
        district = gazetteer.get(*key)
        point = district.center.destination(
            bearing, district.radius_km * radial_fraction
        )
        result = reverse.resolve(point)
        assert result.distance_km <= district.center.distance_km(point) + 1e-9
