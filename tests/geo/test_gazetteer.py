"""Unit and property tests for the gazetteer's indexes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import UnknownRegionError
from repro.geo.gazetteer import Gazetteer
from repro.geo.point import GeoPoint
from repro.geo.region import District, DistrictKind


def _district(name: str, state: str, lat: float, lon: float) -> District:
    return District(
        name=name,
        state=state,
        country="South Korea",
        kind=DistrictKind.CITY,
        center=GeoPoint(lat, lon),
        radius_km=5.0,
        aliases=(name.lower(),),
    )


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(UnknownRegionError):
            Gazetteer([])

    def test_duplicate_keys_rejected(self):
        d = _district("A-si", "X-do", 37.0, 127.0)
        with pytest.raises(UnknownRegionError):
            Gazetteer([d, d])

    def test_len_and_iteration(self, korean_gazetteer):
        assert len(korean_gazetteer) == len(list(korean_gazetteer))


class TestLookups:
    def test_get_known(self, korean_gazetteer):
        d = korean_gazetteer.get("Seoul", "Gangnam-gu")
        assert d.state == "Seoul"
        assert d.name == "Gangnam-gu"

    def test_get_unknown_raises(self, korean_gazetteer):
        with pytest.raises(UnknownRegionError):
            korean_gazetteer.get("Seoul", "Nonexistent-gu")

    def test_find_returns_none(self, korean_gazetteer):
        assert korean_gazetteer.find("Seoul", "Nonexistent-gu") is None

    def test_alias_ambiguity(self, korean_gazetteer):
        # "Jung-gu" exists in several metropolitan cities.
        hits = korean_gazetteer.lookup_alias("jung-gu")
        states = {d.state for d in hits}
        assert {"Seoul", "Busan", "Incheon", "Daegu", "Daejeon", "Ulsan"} <= states

    def test_alias_case_insensitive(self, korean_gazetteer):
        assert korean_gazetteer.lookup_alias("GANGNAM") == korean_gazetteer.lookup_alias(
            "gangnam"
        )

    def test_alias_casefold_non_ascii(self):
        """Regression: the alias index folds with casefold(), not lower().

        'ß'.casefold() == 'ss' while 'ß'.lower() == 'ß', so under the old
        lower()-based index an alias stored as "Große Straße" could never
        match the all-caps spelling "GROSSE STRASSE" users actually type.
        """
        district = District(
            name="Altstadt",
            state="Hessen",
            country="Germany",
            kind=DistrictKind.WORLD_CITY,
            center=GeoPoint(50.11, 8.68),
            radius_km=5.0,
            aliases=("Große Straße",),
        )
        gazetteer = Gazetteer([district])
        assert gazetteer.lookup_alias("GROSSE STRASSE") == (district,)
        assert gazetteer.lookup_alias("grosse strasse") == (district,)
        assert gazetteer.lookup_alias("Große Straße") == (district,)

    def test_in_state(self, korean_gazetteer):
        seoul = korean_gazetteer.in_state("Seoul")
        assert len(seoul) == 25  # all 25 gu
        assert all(d.state == "Seoul" for d in seoul)

    def test_in_state_unknown_raises(self, korean_gazetteer):
        with pytest.raises(UnknownRegionError):
            korean_gazetteer.in_state("Atlantis")


class TestSpatial:
    def test_nearest_at_centroid(self, korean_gazetteer):
        target = korean_gazetteer.get("Seoul", "Mapo-gu")
        assert korean_gazetteer.nearest(target.center).key() == target.key()

    @given(
        st.floats(min_value=33.2, max_value=38.2),
        st.floats(min_value=126.2, max_value=129.5),
    )
    @settings(max_examples=80, deadline=None)
    def test_nearest_matches_brute_force(self, lat, lon):
        gazetteer = Gazetteer.korean()
        point = GeoPoint(lat, lon)
        fast = gazetteer.nearest(point)
        brute = min(gazetteer.districts, key=lambda d: d.center.distance_km(point))
        assert fast.center.distance_km(point) == pytest.approx(
            brute.center.distance_km(point), abs=1e-9
        )

    @given(
        st.floats(min_value=-90.0, max_value=90.0),
        st.one_of(
            st.floats(min_value=-180.0, max_value=180.0),
            # Hug the antimeridian from both sides.
            st.floats(min_value=179.0, max_value=180.0),
            st.floats(min_value=-180.0, max_value=-179.0),
        ),
        st.sampled_from([None, 0.5, 1.0, 2.0]),
    )
    @settings(max_examples=120, deadline=None)
    def test_nearest_matches_brute_force_globally(self, lat, lon, snap_deg):
        """Property: grid-accelerated nearest == brute force over the world
        catalogue, for arbitrary points, points snapped onto grid-cell
        boundaries, and points across the antimeridian."""
        if snap_deg is not None:
            # Snap onto cell boundaries of every factory grid size so the
            # shell search is exercised exactly on cell edges and corners.
            lat = max(-90.0, min(90.0, round(lat / snap_deg) * snap_deg))
            lon = max(-180.0, min(180.0, round(lon / snap_deg) * snap_deg))
        gazetteer = Gazetteer.world()
        point = GeoPoint(lat, lon)
        fast = gazetteer.nearest(point)
        brute = min(gazetteer.districts, key=lambda d: d.center.distance_km(point))
        assert fast.center.distance_km(point) == pytest.approx(
            brute.center.distance_km(point), abs=1e-9
        )

    def test_nearest_across_antimeridian(self):
        """A point just east of the antimeridian must find a centroid just
        west of it (and vice versa) rather than ringing the long way round."""
        west = _district("West-si", "W-do", 10.0, 179.8)
        far = _district("Far-si", "F-do", 10.0, 170.0)
        gazetteer = Gazetteer([west, far], grid_deg=0.5)
        assert gazetteer.nearest(GeoPoint(10.0, -179.9)).name == "West-si"
        mirrored = Gazetteer(
            [_district("East-si", "E-do", 10.0, -179.8), far], grid_deg=0.5
        )
        assert mirrored.nearest(GeoPoint(10.0, 179.9)).name == "East-si"

    def test_within_across_antimeridian(self):
        west = _district("West-si", "W-do", 10.0, 179.8)
        far = _district("Far-si", "F-do", 10.0, 170.0)
        gazetteer = Gazetteer([west, far], grid_deg=0.5)
        hits = gazetteer.within(GeoPoint(10.0, -179.9), radius_km=50.0)
        assert [d.name for d in hits] == ["West-si"]

    def test_nearest_within_cutoff(self, korean_gazetteer):
        # Middle of the East Sea: far from everything at 10 km cutoff.
        sea = GeoPoint(37.5, 131.5)
        assert korean_gazetteer.nearest_within(sea, max_km=10.0) is None
        assert korean_gazetteer.nearest_within(sea, max_km=500.0) is not None

    def test_within_radius_sorted(self, korean_gazetteer):
        center = korean_gazetteer.get("Seoul", "Jongno-gu").center
        hits = korean_gazetteer.within(center, radius_km=10.0)
        distances = [d.center.distance_km(center) for d in hits]
        assert distances == sorted(distances)
        assert all(dist <= 10.0 for dist in distances)
        assert len(hits) >= 5  # central Seoul is dense

    def test_within_zero_radius(self, korean_gazetteer):
        center = korean_gazetteer.get("Seoul", "Jongno-gu").center
        hits = korean_gazetteer.within(center, radius_km=0.0)
        assert [d.key() for d in hits] == [("Seoul", "Jongno-gu")]


class TestFactories:
    def test_world_gazetteer(self, world_gazetteer):
        assert world_gazetteer.find("New York", "New York") is not None
        assert len(world_gazetteer) > 50

    def test_combined_has_both(self, combined_gazetteer):
        assert combined_gazetteer.find("Seoul", "Gangnam-gu") is not None
        assert combined_gazetteer.find("England", "London") is not None

    def test_combined_no_duplicate_seoul(self, combined_gazetteer):
        keys = [d.key() for d in combined_gazetteer.districts]
        assert len(keys) == len(set(keys))
