"""Unit tests for forward geocoding of profile-location fields.

The cases mirror the paper's Fig. 3 menagerie: clean district mentions,
bare metros, countries, vague junk, coordinates, and multi-location
fields.
"""

import pytest

from repro.geo.forward import GeocodeStatus, TextGeocoder
from repro.geo.gazetteer import Gazetteer


@pytest.fixture(scope="module")
def geocoder():
    return TextGeocoder(Gazetteer.korean())


@pytest.fixture(scope="module")
def world_geocoder():
    return TextGeocoder(Gazetteer.combined())


class TestResolved:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("Yangcheon-gu, Seoul", ("Seoul", "Yangcheon-gu")),
            ("Seoul Yangcheon-gu", ("Seoul", "Yangcheon-gu")),
            ("yangcheon", ("Seoul", "Yangcheon-gu")),
            ("Yangchun-gu", ("Seoul", "Yangcheon-gu")),  # the paper's spelling
            ("Uiwang-si, Gyeonggi-do", ("Gyeonggi-do", "Uiwang-si")),
            ("Bucheon", ("Gyeonggi-do", "Bucheon-si")),
            ("Jung-gu, Busan", ("Busan", "Jung-gu")),
            ("busan jung-gu", ("Busan", "Jung-gu")),
            ("HAEUNDAE", ("Busan", "Haeundae-gu")),
            ("Suwon-si", ("Gyeonggi-do", "Suwon-si")),
        ],
    )
    def test_clean_mentions_resolve(self, geocoder, text, expected):
        result = geocoder.geocode(text)
        assert result.status is GeocodeStatus.RESOLVED
        assert result.district is not None
        assert result.district.key() == expected
        assert result.is_well_defined

    def test_coordinates_in_profile_resolve(self, geocoder):
        result = geocoder.geocode("37.5326, 126.9904")
        assert result.status is GeocodeStatus.RESOLVED
        assert result.district.key() == ("Seoul", "Yongsan-gu")

    def test_ocean_coordinates_unresolved(self, geocoder):
        result = geocoder.geocode("30.0, 140.0")
        assert result.status is GeocodeStatus.UNRESOLVED


class TestInsufficient:
    @pytest.mark.parametrize("text", ["Seoul", "seoul", "Busan", "Gyeonggi-do"])
    def test_bare_state_is_state_only(self, geocoder, text):
        result = geocoder.geocode(text)
        assert result.status is GeocodeStatus.STATE_ONLY
        assert not result.is_well_defined

    @pytest.mark.parametrize("text", ["Korea", "South Korea", "대한민국"])
    def test_country_only(self, geocoder, text):
        assert geocoder.geocode(text).status is GeocodeStatus.COUNTRY_ONLY

    @pytest.mark.parametrize("text", ["my home", "Earth", "darangland :)", "우리집", "somewhere"])
    def test_vague(self, geocoder, text):
        assert geocoder.geocode(text).status is GeocodeStatus.VAGUE

    @pytest.mark.parametrize("text", ["", "   ", "~*~*~", "♥♥♥"])
    def test_empty_or_decoration_only(self, geocoder, text):
        assert geocoder.geocode(text).status in (
            GeocodeStatus.EMPTY,
            GeocodeStatus.VAGUE,
        )

    def test_garbage_unresolved(self, geocoder):
        assert geocoder.geocode("xyzzy plugh").status is GeocodeStatus.UNRESOLVED


class TestAmbiguous:
    def test_bare_jung_gu_is_ambiguous(self, geocoder):
        # Jung-gu exists in six metropolitan cities.
        result = geocoder.geocode("Jung-gu")
        assert result.status is GeocodeStatus.AMBIGUOUS
        assert len(result.candidates) >= 5

    def test_state_mention_disambiguates(self, geocoder):
        result = geocoder.geocode("Jung-gu, Daegu")
        assert result.status is GeocodeStatus.RESOLVED
        assert result.district.key() == ("Daegu", "Jung-gu")

    def test_multi_location_is_ambiguous(self, world_geocoder):
        # The paper's Fig. 3 example: two resolvable places in one field.
        result = world_geocoder.geocode("Gold Coast Australia / Seoul Yangcheon-gu")
        assert result.status is GeocodeStatus.AMBIGUOUS
        keys = {d.key() for d in result.candidates}
        assert ("Queensland", "Gold Coast") in keys
        assert ("Seoul", "Yangcheon-gu") in keys

    def test_multi_with_one_resolvable_resolves(self, geocoder):
        result = geocoder.geocode("Bucheon / my hometown somewhere")
        assert result.status is GeocodeStatus.RESOLVED
        assert result.district.key() == ("Gyeonggi-do", "Bucheon-si")

    def test_multi_same_place_twice_resolves(self, geocoder):
        result = geocoder.geocode("Bucheon / bucheon-si")
        assert result.status is GeocodeStatus.RESOLVED


class TestWorld:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("NYC", ("New York", "New York")),
            ("London", ("England", "London")),
            ("Tokyo", ("Tokyo", "Tokyo")),
            ("Gold Coast Australia", ("Queensland", "Gold Coast")),
            ("Paris", ("Ile-de-France", "Paris")),
        ],
    )
    def test_world_cities_resolve(self, world_geocoder, text, expected):
        result = world_geocoder.geocode(text)
        assert result.status is GeocodeStatus.RESOLVED
        assert result.district.key() == expected

    def test_korean_districts_still_resolve_in_combined(self, world_geocoder):
        result = world_geocoder.geocode("Yangcheon-gu, Seoul")
        assert result.status is GeocodeStatus.RESOLVED
