"""Unit and property tests for geographic points and great-circle math."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidCoordinateError
from repro.geo.point import (
    EARTH_RADIUS_KM,
    GeoPoint,
    centroid,
    destination_point,
    geographic_median,
    haversine_km,
    initial_bearing_deg,
    midpoint,
)

lats = st.floats(min_value=-89.0, max_value=89.0, allow_nan=False)
lons = st.floats(min_value=-179.0, max_value=179.0, allow_nan=False)
points = st.builds(GeoPoint, lats, lons)


class TestGeoPointValidation:
    def test_valid_point(self):
        p = GeoPoint(37.5326, 126.9904)
        assert p.lat == 37.5326
        assert p.lon == 126.9904

    @pytest.mark.parametrize("lat,lon", [(91.0, 0.0), (-90.1, 0.0), (0.0, 181.0), (0.0, -180.5)])
    def test_out_of_range_rejected(self, lat, lon):
        with pytest.raises(InvalidCoordinateError):
            GeoPoint(lat, lon)

    @pytest.mark.parametrize("lat,lon", [(float("nan"), 0.0), (0.0, float("inf"))])
    def test_non_finite_rejected(self, lat, lon):
        with pytest.raises(InvalidCoordinateError):
            GeoPoint(lat, lon)

    def test_boundary_values_accepted(self):
        GeoPoint(90.0, 180.0)
        GeoPoint(-90.0, -180.0)

    def test_immutable(self):
        p = GeoPoint(0.0, 0.0)
        with pytest.raises(AttributeError):
            p.lat = 1.0  # type: ignore[misc]


class TestParse:
    def test_parse_roundtrip(self):
        p = GeoPoint(37.5326, 126.9904)
        assert GeoPoint.parse(str(p)) == p

    def test_parse_with_spaces(self):
        assert GeoPoint.parse(" 37.5 , 127.0 ") == GeoPoint(37.5, 127.0)

    @pytest.mark.parametrize("text", ["37.5", "a,b", "1,2,3", "", "37.5;127.0"])
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(InvalidCoordinateError):
            GeoPoint.parse(text)


class TestHaversine:
    def test_known_distance_seoul_busan(self):
        seoul = GeoPoint(37.5665, 126.9780)
        busan = GeoPoint(35.1796, 129.0756)
        # Real-world distance is ~325 km.
        assert haversine_km(seoul, busan) == pytest.approx(325.0, abs=10.0)

    def test_identity_is_zero(self):
        p = GeoPoint(10.0, 20.0)
        assert haversine_km(p, p) == 0.0

    @given(points, points)
    def test_symmetry(self, a, b):
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a), rel=1e-9)

    @given(points, points)
    def test_range(self, a, b):
        d = haversine_km(a, b)
        assert 0.0 <= d <= math.pi * EARTH_RADIUS_KM + 1e-6

    @given(points, points, points)
    @settings(max_examples=60)
    def test_triangle_inequality(self, a, b, c):
        assert haversine_km(a, c) <= haversine_km(a, b) + haversine_km(b, c) + 1e-6


class TestDestinationAndBearing:
    def test_destination_north(self):
        start = GeoPoint(0.0, 0.0)
        end = destination_point(start, 0.0, 111.0)
        assert end.lat == pytest.approx(1.0, abs=0.01)
        assert end.lon == pytest.approx(0.0, abs=0.01)

    def test_negative_distance_rejected(self):
        with pytest.raises(InvalidCoordinateError):
            destination_point(GeoPoint(0, 0), 0.0, -1.0)

    @given(points, st.floats(min_value=0.0, max_value=359.9), st.floats(min_value=0.1, max_value=500.0))
    @settings(max_examples=80)
    def test_destination_distance_consistent(self, start, bearing, distance):
        end = destination_point(start, bearing, distance)
        assert haversine_km(start, end) == pytest.approx(distance, rel=1e-3)

    @given(points, st.floats(min_value=0.0, max_value=359.9))
    @settings(max_examples=60)
    def test_bearing_points_toward_destination(self, start, bearing):
        end = destination_point(start, bearing, 50.0)
        recovered = initial_bearing_deg(start, end)
        delta = abs((recovered - bearing + 180.0) % 360.0 - 180.0)
        assert delta < 1.0


class TestMidpointCentroidMedian:
    def test_midpoint_on_equator(self):
        m = midpoint(GeoPoint(0.0, 0.0), GeoPoint(0.0, 10.0))
        assert m.lat == pytest.approx(0.0, abs=1e-9)
        assert m.lon == pytest.approx(5.0, abs=1e-6)

    @given(points, points)
    @settings(max_examples=60)
    def test_midpoint_equidistant(self, a, b):
        m = midpoint(a, b)
        assert haversine_km(a, m) == pytest.approx(haversine_km(b, m), abs=1e-3)

    def test_centroid_empty_rejected(self):
        with pytest.raises(InvalidCoordinateError):
            centroid([])

    def test_centroid_of_single_point(self):
        p = GeoPoint(37.0, 127.0)
        c = centroid([p])
        assert c.lat == pytest.approx(p.lat, abs=1e-9)
        assert c.lon == pytest.approx(p.lon, abs=1e-9)

    def test_centroid_of_symmetric_cluster(self):
        pts = [GeoPoint(1.0, 0.0), GeoPoint(-1.0, 0.0), GeoPoint(0.0, 1.0), GeoPoint(0.0, -1.0)]
        c = centroid(pts)
        assert abs(c.lat) < 1e-6
        assert abs(c.lon) < 1e-6

    def test_median_robust_to_outlier(self):
        cluster = [GeoPoint(37.5, 127.0)] * 9
        outlier = GeoPoint(35.0, 129.0)
        med = geographic_median(cluster + [outlier])
        cen = centroid(cluster + [outlier])
        target = GeoPoint(37.5, 127.0)
        assert haversine_km(med, target) < haversine_km(cen, target)

    def test_median_empty_rejected(self):
        with pytest.raises(InvalidCoordinateError):
            geographic_median([])

    def test_median_of_identical_points(self):
        p = GeoPoint(10.0, 10.0)
        med = geographic_median([p, p, p])
        assert haversine_km(med, p) < 0.01
