"""Unit and property tests for per-group statistics (Figs. 6-7 math)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InsufficientDataError
from repro.grouping.stats import compute_group_statistics
from repro.grouping.topk import TopKGroup, group_users
from repro.twitter.models import GeotaggedObservation


def _obs(user_id, profile_county, tweet_county):
    return GeotaggedObservation(
        user_id=user_id,
        profile_state="Seoul",
        profile_county=profile_county,
        tweet_state="Seoul",
        tweet_county=tweet_county,
    )


@pytest.fixture
def hand_stats():
    """Two Top-1 users (2 and 3 districts), one None user (1 district)."""
    observations = (
        [_obs(1, "A", "A")] * 4 + [_obs(1, "A", "B")]          # Top-1, 2 districts
        + [_obs(2, "B", "B")] * 2 + [_obs(2, "B", "C")] + [_obs(2, "B", "D")]  # Top-1, 3
        + [_obs(3, "C", "D")] * 3                              # None, 1 district
    )
    return compute_group_statistics(group_users(observations).values())


class TestHandExample:
    def test_user_counts(self, hand_stats):
        assert hand_stats.total_users == 3
        assert hand_stats.row(TopKGroup.TOP_1).user_count == 2
        assert hand_stats.row(TopKGroup.NONE).user_count == 1
        assert hand_stats.row(TopKGroup.TOP_2).user_count == 0

    def test_user_shares(self, hand_stats):
        assert hand_stats.row(TopKGroup.TOP_1).user_share == pytest.approx(2 / 3)
        assert hand_stats.row(TopKGroup.NONE).user_share == pytest.approx(1 / 3)

    def test_avg_tweet_locations(self, hand_stats):
        assert hand_stats.row(TopKGroup.TOP_1).avg_tweet_locations == pytest.approx(2.5)
        assert hand_stats.row(TopKGroup.NONE).avg_tweet_locations == pytest.approx(1.0)

    def test_overall_average_weighted_by_users(self, hand_stats):
        assert hand_stats.overall_avg_tweet_locations == pytest.approx((2 + 3 + 1) / 3)

    def test_tweet_counts(self, hand_stats):
        assert hand_stats.total_tweets == 12
        assert hand_stats.row(TopKGroup.TOP_1).tweet_count == 9
        assert hand_stats.row(TopKGroup.NONE).tweet_count == 3

    def test_avg_matched_share(self, hand_stats):
        # User 1: 4/5 matched; user 2: 2/4 matched -> mean 0.65.
        assert hand_stats.row(TopKGroup.TOP_1).avg_matched_share == pytest.approx(0.65)
        assert hand_stats.row(TopKGroup.NONE).avg_matched_share == 0.0

    def test_as_dict_shape(self, hand_stats):
        table = hand_stats.as_dict()
        assert set(table) == {g.value for g in TopKGroup.reporting_order()}
        assert table["Top-1"]["users"] == 2

    def test_user_share_combination(self, hand_stats):
        combined = hand_stats.user_share(TopKGroup.TOP_1, TopKGroup.NONE)
        assert combined == pytest.approx(1.0)


class TestEdgeCases:
    def test_empty_raises(self):
        with pytest.raises(InsufficientDataError):
            compute_group_statistics([])

    def test_all_rows_present_even_when_empty(self):
        stats = compute_group_statistics(group_users([_obs(1, "A", "A")]).values())
        assert len(stats.rows) == 7
        assert stats.row(TopKGroup.TOP_5).user_count == 0
        assert stats.row(TopKGroup.TOP_5).avg_tweet_locations == 0.0


observation_lists = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=8),
        st.sampled_from(["A", "B", "C"]),
        st.sampled_from(["A", "B", "C", "D", "E"]),
    ),
    min_size=1,
    max_size=100,
)


class TestProperties:
    @given(observation_lists)
    @settings(max_examples=100)
    def test_shares_sum_to_one(self, triples):
        observations = [_obs(u, p, t) for u, p, t in triples]
        stats = compute_group_statistics(group_users(observations).values())
        assert sum(r.user_share for r in stats.rows) == pytest.approx(1.0)
        assert sum(r.tweet_share for r in stats.rows) == pytest.approx(1.0)

    @given(observation_lists)
    @settings(max_examples=100)
    def test_totals_match_input(self, triples):
        observations = [_obs(u, p, t) for u, p, t in triples]
        stats = compute_group_statistics(group_users(observations).values())
        assert stats.total_tweets == len(observations)
        assert stats.total_users == len({o.user_id for o in observations})

    @given(observation_lists)
    @settings(max_examples=60)
    def test_overall_average_in_group_range(self, triples):
        observations = [_obs(u, p, t) for u, p, t in triples]
        stats = compute_group_statistics(group_users(observations).values())
        populated = [r.avg_tweet_locations for r in stats.rows if r.user_count]
        assert min(populated) - 1e-9 <= stats.overall_avg_tweet_locations
        assert stats.overall_avg_tweet_locations <= max(populated) + 1e-9
