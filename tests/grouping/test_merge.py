"""Unit and property tests for merging/ordering (paper Table II)."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grouping.merge import (
    matched_rank,
    merge_strings,
    total_tweets,
    tweet_location_count,
)
from repro.grouping.strings import LocationString


def _record(user_id, profile_county, tweet_county, state="Seoul"):
    return LocationString(user_id, state, profile_county, state, tweet_county)


def paper_table1_records() -> list[LocationString]:
    """The paper's Table I rows (user 40932 and user 7471), reconstructed.

    User 40932 (Yangcheon-gu profile): 3 matched tweets, 2 at Jung-gu,
    1 at Seodaemun-gu.  User 7471 (Uiwang-si profile): 2 matched, 1 at
    Seongnam-si.
    """
    rows = []
    rows += [_record(40932, "Yangcheon-gu", "Yangcheon-gu")] * 3
    rows += [_record(40932, "Yangcheon-gu", "Jung-gu")] * 2
    rows += [_record(40932, "Yangcheon-gu", "Seodaemun-gu")]
    rows += [_record(7471, "Uiwang-si", "Uiwang-si", state="Gyeonggi-do")] * 2
    rows += [_record(7471, "Uiwang-si", "Seongnam-si", state="Gyeonggi-do")]
    return rows


class TestPaperExample:
    def test_table2_counts_and_order(self):
        merged = merge_strings(paper_table1_records())
        user = merged[40932]
        assert [m.count for m in user] == [3, 2, 1]
        assert user[0].record.tweet_county == "Yangcheon-gu"
        assert user[0].is_matched
        assert user[1].record.tweet_county == "Jung-gu"
        assert user[2].record.tweet_county == "Seodaemun-gu"

    def test_table2_render(self):
        merged = merge_strings(paper_table1_records())
        assert (
            merged[40932][0].render()
            == "40932#Seoul#Yangcheon-gu#Seoul#Yangcheon-gu (3)"
        )

    def test_user_7471_matched_first(self):
        merged = merge_strings(paper_table1_records())
        assert matched_rank(merged[7471]) == 1
        assert total_tweets(merged[7471]) == 3
        assert tweet_location_count(merged[7471]) == 2


class TestTieBreakPolicies:
    def _tied_rows(self):
        """Matched and unmatched strings with equal counts."""
        return [
            _record(1, "Mapo-gu", "Mapo-gu"),
            _record(1, "Mapo-gu", "Jung-gu"),
            _record(1, "Mapo-gu", "Guro-gu"),
        ]

    def test_matched_first_puts_match_on_top(self):
        from repro.grouping.merge import TieBreak

        merged = merge_strings(self._tied_rows(), tie_break=TieBreak.MATCHED_FIRST)
        assert merged[1][0].is_matched
        assert matched_rank(merged[1]) == 1

    def test_matched_last_pushes_match_down(self):
        from repro.grouping.merge import TieBreak

        merged = merge_strings(self._tied_rows(), tie_break=TieBreak.MATCHED_LAST)
        assert not merged[1][0].is_matched
        assert matched_rank(merged[1]) == 3

    def test_string_desc_reverses_ties(self):
        from repro.grouping.merge import TieBreak

        asc = merge_strings(self._tied_rows(), tie_break=TieBreak.STRING_ASC)
        desc = merge_strings(self._tied_rows(), tie_break=TieBreak.STRING_DESC)
        assert [m.record for m in desc[1]] == list(reversed([m.record for m in asc[1]]))

    def test_count_order_unaffected_by_policy(self):
        from repro.grouping.merge import TieBreak

        rows = [_record(1, "Mapo-gu", "Jung-gu")] * 5 + self._tied_rows()
        for policy in TieBreak:
            merged = merge_strings(rows, tie_break=policy)
            counts = [m.count for m in merged[1]]
            assert counts == sorted(counts, reverse=True)


class TestOrdering:
    def test_tie_break_is_deterministic(self):
        rows = [
            _record(1, "Mapo-gu", "Jung-gu"),
            _record(1, "Mapo-gu", "Gangnam-gu"),
        ]
        merged = merge_strings(rows)
        # Equal counts: rendered-string ascending puts Gangnam-gu first.
        assert merged[1][0].record.tweet_county == "Gangnam-gu"

    def test_matched_rank_none_when_absent(self):
        rows = [_record(1, "Mapo-gu", "Jung-gu"), _record(1, "Mapo-gu", "Guro-gu")]
        assert matched_rank(merge_strings(rows)[1]) is None

    def test_matched_rank_positions(self):
        rows = (
            [_record(1, "Mapo-gu", "Jung-gu")] * 5
            + [_record(1, "Mapo-gu", "Guro-gu")] * 3
            + [_record(1, "Mapo-gu", "Mapo-gu")] * 2
        )
        assert matched_rank(merge_strings(rows)[1]) == 3


@st.composite
def _observation_triples(draw, max_users=5, max_size=60):
    """(user, profile, tweet) triples with one fixed profile per user —
    the real-world constraint the grouping method assumes."""
    profiles = draw(
        st.fixed_dictionaries(
            {u: st.sampled_from(["A", "B", "C"]) for u in range(1, max_users + 1)}
        )
    )
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=max_users),
                st.sampled_from(["A", "B", "C", "D"]),
            ),
            min_size=1,
            max_size=max_size,
        )
    )
    return [(u, profiles[u], t) for u, t in pairs]


observation_lists = _observation_triples()


class TestProperties:
    @given(observation_lists)
    @settings(max_examples=100)
    def test_counts_preserved(self, triples):
        records = [_record(u, p, t) for u, p, t in triples]
        merged = merge_strings(records)
        assert sum(total_tweets(rows) for rows in merged.values()) == len(records)
        # Per-user totals match too.
        per_user = Counter(r.user_id for r in records)
        for user_id, rows in merged.items():
            assert total_tweets(rows) == per_user[user_id]

    @given(observation_lists)
    @settings(max_examples=100)
    def test_counts_descending(self, triples):
        records = [_record(u, p, t) for u, p, t in triples]
        for rows in merge_strings(records).values():
            counts = [m.count for m in rows]
            assert counts == sorted(counts, reverse=True)

    @given(observation_lists)
    @settings(max_examples=100)
    def test_at_most_one_matched_string_per_user(self, triples):
        records = [_record(u, p, t) for u, p, t in triples]
        for rows in merge_strings(records).values():
            assert sum(1 for m in rows if m.is_matched) <= 1

    @given(observation_lists, st.randoms())
    @settings(max_examples=60)
    def test_order_invariant_under_shuffle(self, triples, rng):
        records = [_record(u, p, t) for u, p, t in triples]
        shuffled = list(records)
        rng.shuffle(shuffled)
        assert merge_strings(records) == merge_strings(shuffled)
