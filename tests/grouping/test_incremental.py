"""Unit and property tests: incremental grouping == batch grouping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InsufficientDataError
from repro.grouping.incremental import IncrementalGrouper
from repro.grouping.merge import TieBreak
from repro.grouping.topk import TopKGroup, group_users
from repro.twitter.models import GeotaggedObservation


def _obs(user_id, profile_county, tweet_county):
    return GeotaggedObservation(
        user_id=user_id,
        profile_state="Seoul",
        profile_county=profile_county,
        tweet_state="Seoul",
        tweet_county=tweet_county,
    )


class TestBasics:
    def test_unseen_user(self):
        grouper = IncrementalGrouper()
        assert grouper.group_of(1) is None
        with pytest.raises(InsufficientDataError):
            grouper.classify(1)

    def test_single_observation(self):
        grouper = IncrementalGrouper()
        grouper.add(_obs(1, "A", "A"))
        assert grouper.group_of(1) is TopKGroup.TOP_1
        assert grouper.observation_count(1) == 1

    def test_group_evolves_with_stream(self):
        grouper = IncrementalGrouper()
        grouper.add(_obs(1, "A", "A"))
        assert grouper.group_of(1) is TopKGroup.TOP_1
        # Two tweets from elsewhere demote the matched string to rank 2.
        grouper.add(_obs(1, "A", "B"))
        grouper.add(_obs(1, "A", "B"))
        assert grouper.group_of(1) is TopKGroup.TOP_2
        # Catch back up.
        grouper.add(_obs(1, "A", "A"))
        grouper.add(_obs(1, "A", "A"))
        assert grouper.group_of(1) is TopKGroup.TOP_1

    def test_user_ids_sorted(self):
        grouper = IncrementalGrouper()
        grouper.add(_obs(5, "A", "A"))
        grouper.add(_obs(2, "A", "A"))
        assert grouper.user_ids == [2, 5]


@st.composite
def _streams(draw):
    profiles = draw(
        st.fixed_dictionaries(
            {u: st.sampled_from(["A", "B", "C"]) for u in range(1, 6)}
        )
    )
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=5),
                st.sampled_from(["A", "B", "C", "D", "E"]),
            ),
            min_size=1,
            max_size=80,
        )
    )
    return [_obs(u, profiles[u], t) for u, t in pairs]


class TestEquivalence:
    @given(_streams())
    @settings(max_examples=100)
    def test_matches_batch_at_end(self, observations):
        grouper = IncrementalGrouper()
        grouper.add_many(observations)
        incremental = grouper.classify_all()
        batch = group_users(observations)
        assert set(incremental) == set(batch)
        for user_id in batch:
            assert incremental[user_id] == batch[user_id]

    @given(_streams(), st.integers(min_value=1, max_value=79))
    @settings(max_examples=60)
    def test_matches_batch_at_every_prefix(self, observations, cut):
        cut = min(cut, len(observations))
        prefix = observations[:cut]
        grouper = IncrementalGrouper()
        grouper.add_many(prefix)
        assert grouper.classify_all() == group_users(prefix)

    @given(_streams())
    @settings(max_examples=40)
    def test_tie_break_policies_match_batch(self, observations):
        for policy in TieBreak:
            grouper = IncrementalGrouper(tie_break=policy)
            grouper.add_many(observations)
            assert grouper.classify_all() == group_users(
                observations, tie_break=policy
            )


class TestArrivalOrder:
    """A live stream delivers users out of order and interleaved — the
    incremental result must match the batch method run on the original
    (time-ordered) observation list regardless."""

    @given(_streams(), st.randoms(use_true_random=False))
    @settings(max_examples=60)
    def test_shuffled_arrival_matches_batch(self, observations, rng):
        shuffled = list(observations)
        rng.shuffle(shuffled)
        grouper = IncrementalGrouper()
        grouper.add_many(shuffled)
        assert grouper.classify_all() == group_users(observations)

    @given(_streams())
    @settings(max_examples=40)
    def test_interleaved_equals_user_contiguous(self, observations):
        by_user: dict[int, list] = {}
        for obs in observations:
            by_user.setdefault(obs.user_id, []).append(obs)
        contiguous = [obs for rows in by_user.values() for obs in rows]
        # Round-robin across users: the worst interleaving a stream with
        # per-user time order preserved can produce.
        interleaved = []
        queues = [list(rows) for rows in by_user.values()]
        while any(queues):
            for rows in queues:
                if rows:
                    interleaved.append(rows.pop(0))
        a, b = IncrementalGrouper(), IncrementalGrouper()
        a.add_many(contiguous)
        b.add_many(interleaved)
        assert a.classify_all() == b.classify_all() == group_users(observations)


class TestExportCounts:
    """The canonical counter view behind streaming checkpoint digests."""

    @given(_streams(), st.randoms(use_true_random=False))
    @settings(max_examples=60)
    def test_order_insensitive(self, observations, rng):
        shuffled = list(observations)
        rng.shuffle(shuffled)
        a, b = IncrementalGrouper(), IncrementalGrouper()
        a.add_many(observations)
        b.add_many(shuffled)
        assert a.export_counts() == b.export_counts()

    def test_canonical_ordering(self):
        grouper = IncrementalGrouper()
        grouper.add(_obs(7, "A", "B"))
        grouper.add(_obs(7, "A", "A"))
        grouper.add(_obs(2, "A", "A"))
        counts = grouper.export_counts()
        assert list(counts) == [2, 7]  # users ascend
        assert all(
            list(rows) == sorted(rows) for rows in counts.values()
        )  # rendered strings ascend within a user
        assert sum(counts[7].values()) == 2
