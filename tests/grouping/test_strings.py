"""Unit and property tests for location strings (paper Table I)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.grouping.strings import DELIMITER, LocationString
from repro.twitter.models import GeotaggedObservation

field_names = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll"), max_codepoint=0x2FF),
    min_size=1,
    max_size=16,
)
records = st.builds(
    LocationString,
    st.integers(min_value=0, max_value=10**9),
    field_names, field_names, field_names, field_names,
)


class TestConstruction:
    def test_paper_example(self):
        record = LocationString(40932, "Seoul", "Yangcheon-gu", "Seoul", "Seodaemun-gu")
        assert record.render() == "40932#Seoul#Yangcheon-gu#Seoul#Seodaemun-gu"
        assert not record.is_matched

    def test_matched_string(self):
        record = LocationString(40932, "Seoul", "Yangcheon-gu", "Seoul", "Yangcheon-gu")
        assert record.is_matched

    def test_same_county_different_state_not_matched(self):
        # "Jung-gu" exists in both Seoul and Busan; only the full
        # (state, county) pair matches.
        record = LocationString(1, "Seoul", "Jung-gu", "Busan", "Jung-gu")
        assert not record.is_matched

    def test_delimiter_in_field_rejected(self):
        with pytest.raises(AnalysisError):
            LocationString(1, "Se#oul", "A", "B", "C")

    def test_empty_field_rejected(self):
        with pytest.raises(AnalysisError):
            LocationString(1, "", "A", "B", "C")

    def test_keys(self):
        record = LocationString(7, "Gyeonggi-do", "Uiwang-si", "Gyeonggi-do", "Seongnam-si")
        assert record.profile_key() == ("Gyeonggi-do", "Uiwang-si")
        assert record.tweet_key() == ("Gyeonggi-do", "Seongnam-si")


class TestParse:
    def test_parse_paper_row(self):
        record = LocationString.parse("71#Gyeonggi-do#Uiwang-si#Gyeonggi-do#Uiwang-si")
        assert record.user_id == 71
        assert record.is_matched

    @pytest.mark.parametrize(
        "text",
        ["1#a#b#c", "1#a#b#c#d#e", "x#a#b#c#d", "", "1"],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(AnalysisError):
            LocationString.parse(text)

    @given(records)
    @settings(max_examples=100)
    def test_render_parse_roundtrip(self, record):
        assert LocationString.parse(record.render()) == record


class TestFromObservation:
    def test_fields_copied(self):
        obs = GeotaggedObservation(
            user_id=5,
            profile_state="Seoul",
            profile_county="Jung-gu",
            tweet_state="Seoul",
            tweet_county="Jung-gu",
        )
        record = LocationString.from_observation(obs)
        assert record.user_id == 5
        assert record.is_matched == obs.matched
        assert DELIMITER not in "".join(
            (record.profile_state, record.profile_county)
        )
