"""Unit and property tests for Top-k classification."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InsufficientDataError
from repro.grouping.merge import merge_strings
from repro.grouping.strings import LocationString
from repro.grouping.topk import TopKGroup, classify_rows, group_users
from repro.twitter.models import GeotaggedObservation


def _obs(user_id, profile_county, tweet_county, state="Seoul"):
    return GeotaggedObservation(
        user_id=user_id,
        profile_state=state,
        profile_county=profile_county,
        tweet_state=state,
        tweet_county=tweet_county,
    )


class TestFromRank:
    @pytest.mark.parametrize(
        "rank,expected",
        [
            (1, TopKGroup.TOP_1), (2, TopKGroup.TOP_2), (3, TopKGroup.TOP_3),
            (4, TopKGroup.TOP_4), (5, TopKGroup.TOP_5),
            (6, TopKGroup.TOP_6_PLUS), (17, TopKGroup.TOP_6_PLUS),
            (None, TopKGroup.NONE),
        ],
    )
    def test_mapping(self, rank, expected):
        assert TopKGroup.from_rank(rank) is expected

    def test_invalid_rank(self):
        with pytest.raises(InsufficientDataError):
            TopKGroup.from_rank(0)

    def test_reporting_order(self):
        order = TopKGroup.reporting_order()
        assert order[0] is TopKGroup.TOP_1
        assert order[-1] is TopKGroup.NONE
        assert len(order) == 7

    def test_is_matched_group(self):
        assert TopKGroup.TOP_3.is_matched_group
        assert not TopKGroup.NONE.is_matched_group


class TestClassify:
    def test_paper_top1_user(self):
        # User 40932: matched string ranked first -> Top-1.
        observations = (
            [_obs(40932, "Yangcheon-gu", "Yangcheon-gu")] * 3
            + [_obs(40932, "Yangcheon-gu", "Jung-gu")] * 2
            + [_obs(40932, "Yangcheon-gu", "Seodaemun-gu")]
        )
        grouping = group_users(observations)[40932]
        assert grouping.group is TopKGroup.TOP_1
        assert grouping.matched_rank == 1
        assert grouping.total_tweets == 6
        assert grouping.matched_tweets == 3
        assert grouping.tweet_location_count == 3
        assert grouping.matched_share == pytest.approx(0.5)

    def test_paper_top2_user(self):
        # User 7471 in the paper's Table II narrative: matched second.
        observations = (
            [_obs(7471, "Uiwang-si", "Seongnam-si", state="Gyeonggi-do")] * 3
            + [_obs(7471, "Uiwang-si", "Uiwang-si", state="Gyeonggi-do")] * 2
        )
        grouping = group_users(observations)[7471]
        assert grouping.group is TopKGroup.TOP_2
        assert grouping.matched_rank == 2

    def test_none_user(self):
        observations = [_obs(9, "Mapo-gu", "Jung-gu"), _obs(9, "Mapo-gu", "Guro-gu")]
        grouping = group_users(observations)[9]
        assert grouping.group is TopKGroup.NONE
        assert grouping.matched_rank is None
        assert grouping.matched_tweets == 0
        assert grouping.matched_share == 0.0

    def test_classify_empty_rows_raises(self):
        with pytest.raises(InsufficientDataError):
            classify_rows(1, [])

    def test_single_matched_tweet_is_top1(self):
        grouping = group_users([_obs(3, "Mapo-gu", "Mapo-gu")])[3]
        assert grouping.group is TopKGroup.TOP_1
        assert grouping.matched_share == 1.0


@st.composite
def _observation_triples(draw, max_users=6, max_size=80):
    """(user, profile, tweet) triples with one fixed profile per user."""
    profiles = draw(
        st.fixed_dictionaries(
            {u: st.sampled_from(["A", "B", "C"]) for u in range(1, max_users + 1)}
        )
    )
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=max_users),
                st.sampled_from(["A", "B", "C", "D", "E", "F", "G"]),
            ),
            min_size=1,
            max_size=max_size,
        )
    )
    return [(u, profiles[u], t) for u, t in pairs]


observation_lists = _observation_triples()


class TestProperties:
    @given(observation_lists)
    @settings(max_examples=100)
    def test_every_user_classified_once(self, triples):
        observations = [_obs(u, p, t) for u, p, t in triples]
        groupings = group_users(observations)
        assert set(groupings) == {o.user_id for o in observations}

    @given(observation_lists)
    @settings(max_examples=100)
    def test_rank_bounded_by_distinct_locations(self, triples):
        observations = [_obs(u, p, t) for u, p, t in triples]
        for grouping in group_users(observations).values():
            if grouping.matched_rank is not None:
                assert 1 <= grouping.matched_rank <= grouping.tweet_location_count

    @given(observation_lists)
    @settings(max_examples=100)
    def test_none_iff_never_matched(self, triples):
        observations = [_obs(u, p, t) for u, p, t in triples]
        matched_users = {o.user_id for o in observations if o.matched}
        for user_id, grouping in group_users(observations).items():
            if user_id in matched_users:
                assert grouping.group is not TopKGroup.NONE
            else:
                assert grouping.group is TopKGroup.NONE

    @given(observation_lists)
    @settings(max_examples=100)
    def test_matched_tweets_consistent(self, triples):
        observations = [_obs(u, p, t) for u, p, t in triples]
        for user_id, grouping in group_users(observations).items():
            expected = sum(
                1 for o in observations if o.user_id == user_id and o.matched
            )
            assert grouping.matched_tweets == expected

    @given(observation_lists, st.randoms())
    @settings(max_examples=60)
    def test_invariant_under_shuffle(self, triples, rng):
        observations = [_obs(u, p, t) for u, p, t in triples]
        shuffled = list(observations)
        rng.shuffle(shuffled)
        original = {u: g.group for u, g in group_users(observations).items()}
        reshuffled = {u: g.group for u, g in group_users(shuffled).items()}
        assert original == reshuffled

    @given(observation_lists)
    @settings(max_examples=60)
    def test_rank1_means_matched_is_modal(self, triples):
        observations = [_obs(u, p, t) for u, p, t in triples]
        for grouping in group_users(observations).values():
            if grouping.group is TopKGroup.TOP_1:
                max_count = max(m.count for m in grouping.merged)
                assert grouping.matched_tweets == max_count


class TestMergedViewConsistency:
    @given(observation_lists)
    @settings(max_examples=60)
    def test_grouping_merged_matches_merge_strings(self, triples):
        observations = [_obs(u, p, t) for u, p, t in triples]
        records = [LocationString.from_observation(o) for o in observations]
        merged = merge_strings(records)
        for user_id, grouping in group_users(observations).items():
            assert list(grouping.merged) == merged[user_id]
