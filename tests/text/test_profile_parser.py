"""Unit tests for structural profile-location parsing."""

import pytest

from repro.text.profile_parser import ProfileShape, parse_profile_location


class TestShapes:
    def test_empty(self):
        assert parse_profile_location("").shape is ProfileShape.EMPTY
        assert parse_profile_location("   ").shape is ProfileShape.EMPTY

    def test_single(self):
        parsed = parse_profile_location("Yangcheon-gu, Seoul")
        assert parsed.shape is ProfileShape.SINGLE
        assert parsed.phrases == ("yangcheon-gu, seoul",)

    def test_multi_slash(self):
        parsed = parse_profile_location("Gold Coast Australia / 서울 양천구")
        assert parsed.shape is ProfileShape.MULTI
        assert len(parsed.phrases) == 2

    @pytest.mark.parametrize("sep", ["|", ";", "&", " and "])
    def test_multi_separators(self, sep):
        parsed = parse_profile_location(f"Seoul{sep}Busan")
        assert parsed.shape is ProfileShape.MULTI

    def test_comma_stays_single(self):
        # "district, city" must not be split into two locations.
        parsed = parse_profile_location("Jung-gu, Busan")
        assert parsed.shape is ProfileShape.SINGLE

    def test_coordinates(self):
        parsed = parse_profile_location("37.5326,126.9904")
        assert parsed.shape is ProfileShape.COORDINATES
        assert parsed.coordinates == (37.5326, 126.9904)

    def test_coordinates_with_label(self):
        parsed = parse_profile_location("home: 37.5326, 126.9904")
        assert parsed.shape is ProfileShape.COORDINATES
        assert parsed.phrases  # the leftover "home:" text survives

    def test_integer_pair_not_coordinates(self):
        # "2, 73" reads like a list, not a GPS fix.
        parsed = parse_profile_location("2, 73")
        assert parsed.shape is not ProfileShape.COORDINATES

    def test_out_of_range_pair_not_coordinates(self):
        parsed = parse_profile_location("99.5, 200.1")
        assert parsed.shape is not ProfileShape.COORDINATES

    def test_address_detected(self):
        parsed = parse_profile_location("3 Jibong-ro, Bucheon-si")
        assert parsed.shape is ProfileShape.ADDRESS

    def test_raw_preserved(self):
        raw = "  Seoul / Busan  "
        assert parse_profile_location(raw).raw == raw
