"""Unit tests for text normalisation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.text.normalize import (
    collapse_spaces,
    hangul_ratio,
    is_hangul,
    normalize_text,
    strip_punctuation,
)


class TestNormalizeText:
    def test_lowercases_and_trims(self):
        assert normalize_text("  SEOUL  Korea ") == "seoul korea"

    def test_strips_decorations(self):
        assert normalize_text("~Seoul♥") == "seoul"
        assert normalize_text("Seoul!!!") == "seoul"

    def test_strips_emoticons(self):
        assert normalize_text("darangland :)") == "darangland"
        assert normalize_text("home ;-)") == "home"

    def test_pure_decoration_becomes_empty(self):
        assert normalize_text("~*~ ♥♥ ~*~") == ""

    def test_keeps_meaningful_punctuation(self):
        assert normalize_text("Yangcheon-gu, Seoul") == "yangcheon-gu, seoul"

    def test_nfkc_normalisation(self):
        # Full-width latin compatibility characters fold to ASCII.
        assert normalize_text("Ｓｅｏｕｌ") == "seoul"

    def test_keeps_hangul(self):
        assert normalize_text("서울 양천구") == "서울 양천구"

    @given(st.text(max_size=60))
    def test_idempotent(self, text):
        once = normalize_text(text)
        assert normalize_text(once) == once

    @given(st.text(max_size=60))
    def test_no_double_spaces_or_edges(self, text):
        result = normalize_text(text)
        assert "  " not in result
        assert result == result.strip()


class TestStripPunctuation:
    def test_keeps_hyphen_by_default(self):
        assert strip_punctuation("yangcheon-gu, seoul") == "yangcheon-gu seoul"

    def test_custom_keep(self):
        assert strip_punctuation("a.b-c", keep=".") == "a.b c"

    def test_collapse_spaces(self):
        assert collapse_spaces("a   b \t c") == "a b c"


class TestHangul:
    def test_is_hangul(self):
        assert is_hangul("한")
        assert is_hangul("ㄱ")
        assert not is_hangul("a")
        assert not is_hangul("1")

    def test_hangul_ratio(self):
        assert hangul_ratio("서울") == 1.0
        assert hangul_ratio("seoul") == 0.0
        assert hangul_ratio("") == 0.0
        assert 0.0 < hangul_ratio("서울 seoul") < 1.0
