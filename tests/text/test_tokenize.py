"""Unit tests for the Twitter-aware tokenizer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.tokenize import STOPWORDS, ngrams, tokenize, tokenize_tweet


class TestTokenize:
    def test_basic_words(self):
        assert tokenize("Having coffee near the station") == [
            "having", "coffee", "near", "station",
        ]

    def test_stopwords_removed_by_default(self):
        assert "the" not in tokenize("the quick fox")

    def test_stopwords_kept_on_request(self):
        assert "the" in tokenize("the quick fox", drop_stopwords=False)

    def test_keeps_hyphenated_place_names(self):
        assert "yangcheon-gu" in tokenize("in Yangcheon-gu today")

    def test_urls_removed(self):
        tokens = tokenize("look at this http://example.com/x?y=1 wow")
        assert all("http" not in t and "example" not in t for t in tokens)

    def test_numbers_kept(self):
        assert "3.5" in tokenize("magnitude 3.5 quake")

    def test_hangul_tokens(self):
        assert "지진" in tokenize("지진 발생")


class TestTokenizeTweet:
    def test_separates_entities(self):
        tokens = tokenize_tweet("@friend check #earthquake news http://t.co/abc now!")
        assert tokens.mentions == ("@friend",)
        assert tokens.hashtags == ("#earthquake",)
        assert tokens.urls == ("http://t.co/abc",)
        assert "check" in tokens.words
        assert "news" in tokens.words

    def test_all_terms_includes_hashtag_bodies(self):
        tokens = tokenize_tweet("#earthquake in town")
        assert "earthquake" in tokens.all_terms()

    def test_no_entities(self):
        tokens = tokenize_tweet("plain text only")
        assert tokens.mentions == ()
        assert tokens.hashtags == ()
        assert tokens.urls == ()


class TestNgrams:
    def test_bigrams(self):
        assert ngrams(["a", "b", "c"], 2) == [("a", "b"), ("b", "c")]

    def test_too_short_gives_empty(self):
        assert ngrams(["a"], 2) == []

    def test_n_must_be_positive(self):
        with pytest.raises(ValueError):
            ngrams(["a"], 0)

    @given(st.lists(st.text(alphabet="abc", min_size=1, max_size=3), max_size=10),
           st.integers(min_value=1, max_value=4))
    def test_count_formula(self, tokens, n):
        assert len(ngrams(tokens, n)) == max(0, len(tokens) - n + 1)


def test_stopwords_are_lowercase():
    assert all(w == w.lower() for w in STOPWORDS)
