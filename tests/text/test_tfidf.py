"""Unit and property tests for the TF-IDF corpus."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InsufficientDataError
from repro.text.tfidf import TfIdfCorpus, cosine_similarity

words = st.text(alphabet="abcdefg", min_size=1, max_size=4)
documents = st.lists(words, min_size=1, max_size=8)


@pytest.fixture
def corpus():
    c = TfIdfCorpus()
    c.add_text("coffee in gangnam this morning")
    c.add_text("coffee again coffee always")
    c.add_text("earthquake drill at school")
    c.add_text("rainy day in seoul")
    return c


class TestCorpus:
    def test_doc_count(self, corpus):
        assert corpus.doc_count == 4

    def test_document_frequency(self, corpus):
        assert corpus.document_frequency("coffee") == 2
        assert corpus.document_frequency("unseen") == 0

    def test_add_document_dedupes_within_doc(self):
        c = TfIdfCorpus()
        c.add_document(["a", "a", "a"])
        assert c.document_frequency("a") == 1

    def test_empty_document_ignored(self):
        c = TfIdfCorpus()
        c.add_document([])
        assert c.doc_count == 0

    def test_idf_rarer_is_larger(self, corpus):
        assert corpus.idf("earthquake") > corpus.idf("coffee")

    def test_idf_unseen_largest(self, corpus):
        seen_max = max(corpus.idf(t) for t in ("coffee", "earthquake", "rainy"))
        assert corpus.idf("neverseen") >= seen_max


class TestScoreSlice:
    def test_rare_terms_rank_high(self, corpus):
        slice_docs = [["earthquake", "earthquake", "coffee"]]
        top = corpus.score_slice(slice_docs, top_k=2)
        assert top[0].term == "earthquake"
        assert top[0].tf == 2

    def test_top_k_limits(self, corpus):
        top = corpus.score_slice([["a", "b", "c", "d"]], top_k=2)
        assert len(top) == 2

    def test_empty_corpus_raises(self):
        with pytest.raises(InsufficientDataError):
            TfIdfCorpus().score_slice([["a"]])

    def test_deterministic_tie_break(self, corpus):
        top = corpus.score_slice([["zzz", "aaa"]], top_k=2)
        assert [t.term for t in top] == ["aaa", "zzz"]  # equal scores: term asc


class TestVectorize:
    def test_unit_norm(self, corpus):
        vector = corpus.vectorize(["coffee", "gangnam"])
        norm = sum(v * v for v in vector.values()) ** 0.5
        assert norm == pytest.approx(1.0)

    def test_empty_tokens(self, corpus):
        assert corpus.vectorize([]) == {}


class TestCosine:
    def test_identical_vectors(self, corpus):
        v = corpus.vectorize(["coffee", "rainy"])
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_disjoint_vectors(self, corpus):
        a = corpus.vectorize(["coffee"])
        b = corpus.vectorize(["earthquake"])
        assert cosine_similarity(a, b) == pytest.approx(0.0)

    def test_empty_vector(self):
        assert cosine_similarity({}, {"a": 1.0}) == 0.0

    @given(documents, documents)
    @settings(max_examples=60)
    def test_bounds_and_symmetry(self, doc_a, doc_b):
        c = TfIdfCorpus()
        c.add_document(doc_a)
        c.add_document(doc_b)
        a = c.vectorize(doc_a)
        b = c.vectorize(doc_b)
        sim = cosine_similarity(a, b)
        assert -1e-9 <= sim <= 1.0 + 1e-9
        assert sim == pytest.approx(cosine_similarity(b, a), abs=1e-9)
