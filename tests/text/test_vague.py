"""Unit tests for vague / insufficient profile-location detection."""

import pytest

from repro.text.vague import is_country_only, is_informative, is_vague


class TestVague:
    @pytest.mark.parametrize(
        "text",
        ["Earth", "my home", "MY HOME", "  the internet ", "darangland :)",
         "우리집", "지구", "everywhere", "Heaven", ""],
    )
    def test_vague_phrases(self, text):
        assert is_vague(text)

    @pytest.mark.parametrize("text", ["Seoul", "Yangcheon-gu", "Bucheon-si", "NYC"])
    def test_real_places_not_vague(self, text):
        assert not is_vague(text)

    def test_decorated_vague_phrase(self):
        assert is_vague("~my home~")


class TestCountryOnly:
    @pytest.mark.parametrize(
        "text", ["Korea", "south korea", "대한민국", "USA", "Japan", "REPUBLIC OF KOREA"]
    )
    def test_countries(self, text):
        assert is_country_only(text)

    @pytest.mark.parametrize("text", ["Seoul", "Korea Town LA", "South Korea Seoul"])
    def test_non_bare_countries(self, text):
        assert not is_country_only(text)


class TestInformative:
    def test_informative_is_neither(self):
        assert is_informative("Yangcheon-gu, Seoul")
        assert not is_informative("Earth")
        assert not is_informative("Korea")
        assert not is_informative("")
