"""Documentation-coverage gate: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return names


MODULES = _walk_modules()


@pytest.mark.parametrize("module_name", MODULES)
def test_module_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), f"{module_name} lacks a docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, item in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(item) or inspect.isfunction(item)):
            continue
        if getattr(item, "__module__", None) != module_name:
            continue  # re-export; documented at its definition site
        if not (item.__doc__ and item.__doc__.strip()):
            undocumented.append(name)
            continue
        if inspect.isclass(item):
            for method_name, method in vars(item).items():
                if method_name.startswith("_") or not inspect.isfunction(method):
                    continue
                if not (method.__doc__ and method.__doc__.strip()):
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, f"{module_name}: undocumented public items: {undocumented}"
