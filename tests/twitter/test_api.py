"""Unit tests for the simulated REST and Streaming APIs."""

import pytest

from repro.errors import NotFoundError, RateLimitExceededError
from repro.geo.gazetteer import Gazetteer
from repro.geo.region import BoundingBox
from repro.twitter.api import (
    FOLLOWER_PAGE_SIZE,
    RateLimitPolicy,
    RestApi,
    StreamingApi,
    StreamStats,
    VirtualClock,
)
from repro.twitter.population import PopulationConfig, PopulationGenerator
from repro.twitter.social_graph import FollowerGraph, GraphConfig
from repro.twitter.tweetgen import CollectionWindow, TweetGenerator


@pytest.fixture(scope="module")
def platform():
    population = PopulationGenerator(
        Gazetteer.korean(), PopulationConfig(size=80, seed=21)
    ).generate()
    generator = TweetGenerator(
        CollectionWindow(start_ms=1_314_835_200_000, days=20), seed=21
    )
    tweets = {s.user.user_id: generator.tweets_for(s) for s in population}
    graph = FollowerGraph.generate(
        [s.user.user_id for s in population], GraphConfig(seed=21)
    )
    return population, graph, tweets


def _make_api(platform, **kwargs):
    population, graph, tweets = platform
    return RestApi(
        users={s.user.user_id: s.user for s in population},
        graph=graph,
        tweets_by_user=tweets,
        **kwargs,
    )


class TestVirtualClock:
    def test_advance(self):
        clock = VirtualClock()
        clock.advance(10.0)
        assert clock.now_s == 10.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)


class TestUserLookup:
    def test_get_user_fills_degrees(self, platform):
        population, graph, _ = platform
        api = _make_api(platform)
        uid = population[3].user.user_id
        user = api.get_user(uid)
        followers, friends = graph.degree(uid)
        assert user.followers == followers
        assert user.friends == friends

    def test_unknown_user(self, platform):
        api = _make_api(platform)
        with pytest.raises(NotFoundError):
            api.get_user(424242)


class TestBatchLookup:
    def test_hydrates_in_request_order(self, platform):
        population, _, _ = platform
        api = _make_api(platform)
        ids = [s.user.user_id for s in population[:5]]
        users = api.lookup_users(list(reversed(ids)))
        assert [u.user_id for u in users] == list(reversed(ids))
        assert api.usage.batch_lookup_calls == 1

    def test_unknown_ids_omitted(self, platform):
        population, _, _ = platform
        api = _make_api(platform)
        known = population[0].user.user_id
        users = api.lookup_users([424242, known, 424243])
        assert [u.user_id for u in users] == [known]

    def test_oversized_batch_rejected(self, platform):
        api = _make_api(platform)
        with pytest.raises(NotFoundError):
            api.lookup_users(list(range(101)))

    def test_batch_agrees_with_single_lookup(self, platform):
        population, _, _ = platform
        api = _make_api(platform)
        uid = population[7].user.user_id
        [batch_user] = api.lookup_users([uid])
        assert batch_user == api.get_user(uid)


class TestFollowers:
    def test_pagination_reconstructs_full_list(self, platform):
        population, graph, _ = platform
        api = _make_api(platform)
        hub = max(graph.user_ids, key=lambda u: len(graph.followers_of(u)))
        collected = []
        cursor = -1
        while True:
            page = api.get_followers(hub, cursor=cursor)
            collected.extend(page.ids)
            if page.next_cursor == 0:
                break
            cursor = page.next_cursor
        assert collected == graph.followers_of(hub)
        assert len(page.ids) <= FOLLOWER_PAGE_SIZE

    def test_rate_limit_and_window_reset(self, platform):
        api = _make_api(
            platform,
            follower_limit=RateLimitPolicy(window_s=900.0, calls_per_window=2),
        )
        seed = platform[1].seed_user_id
        api.get_followers(seed)
        api.get_followers(seed)
        with pytest.raises(RateLimitExceededError) as exc_info:
            api.get_followers(seed)
        assert 0 < exc_info.value.retry_after_s <= 900.0
        assert api.usage.rate_limit_rejections == 1
        api.clock.advance(901.0)
        api.get_followers(seed)  # fresh window


class TestTimeline:
    def test_newest_first(self, platform):
        population, _, tweets = platform
        api = _make_api(platform)
        uid = population[0].user.user_id
        page = api.get_user_timeline(uid, count=10)
        ids = [t.tweet_id for t in page]
        assert ids == sorted(ids, reverse=True)

    def test_since_id_exclusive(self, platform):
        population, _, tweets = platform
        api = _make_api(platform)
        uid = population[0].user.user_id
        full = tweets[uid]
        pivot = full[len(full) // 2].tweet_id
        page = api.get_user_timeline(uid, since_id=pivot, count=200)
        assert all(t.tweet_id > pivot for t in page)

    def test_max_id_inclusive(self, platform):
        population, _, tweets = platform
        api = _make_api(platform)
        uid = population[0].user.user_id
        pivot = tweets[uid][-1].tweet_id
        page = api.get_user_timeline(uid, max_id=pivot, count=200)
        assert page and page[0].tweet_id == pivot

    def test_fetch_full_timeline(self, platform):
        population, _, tweets = platform
        api = _make_api(platform)
        uid = population[0].user.user_id
        collected = api.fetch_full_timeline(uid)
        assert sorted(t.tweet_id for t in collected) == sorted(
            t.tweet_id for t in tweets[uid]
        )

    def test_fetch_full_timeline_waits_out_limits(self, platform):
        api = _make_api(
            platform,
            timeline_limit=RateLimitPolicy(window_s=900.0, calls_per_window=1),
        )
        population = platform[0]
        busy = max(population, key=lambda s: s.tweets_per_day)
        before = api.clock.now_s
        collected = api.fetch_full_timeline(busy.user.user_id)
        assert collected
        if api.usage.timeline_calls > 1:
            assert api.clock.now_s > before


class TestSearch:
    def test_matches_are_newest_first(self, platform):
        api = _make_api(platform)
        page = api.search_tweets("coffee")
        assert page.tweets
        ids = [t.tweet_id for t in page.tweets]
        assert ids == sorted(ids, reverse=True)
        assert all("coffee" in t.text.lower() for t in page.tweets)

    def test_pagination_collects_everything(self, platform):
        _, _, tweets = platform
        api = _make_api(platform)
        expected = sorted(
            t.tweet_id
            for ts in tweets.values()
            for t in ts
            if "coffee" in t.text.lower()
        )
        collected: list[int] = []
        max_id = None
        while True:
            page = api.search_tweets("coffee", max_id=max_id, count=20)
            collected.extend(t.tweet_id for t in page.tweets)
            if page.max_id is None:
                break
            max_id = page.max_id
        assert sorted(collected) == expected

    def test_since_id_exclusive(self, platform):
        api = _make_api(platform)
        first = api.search_tweets("coffee", count=5)
        pivot = first.tweets[-1].tweet_id
        newer = api.search_tweets("coffee", since_id=pivot)
        assert all(t.tweet_id > pivot for t in newer.tweets)

    def test_case_insensitive(self, platform):
        api = _make_api(platform)
        a = api.search_tweets("COFFEE")
        b = api.search_tweets("coffee")
        assert [t.tweet_id for t in a.tweets] == [t.tweet_id for t in b.tweets]

    def test_no_matches(self, platform):
        api = _make_api(platform)
        page = api.search_tweets("zxqj-nothing-matches")
        assert page.tweets == ()
        assert page.max_id is None

    def test_usage_counted(self, platform):
        api = _make_api(platform)
        api.search_tweets("coffee")
        assert api.usage.search_calls == 1


class TestStreaming:
    def test_track_filter_case_insensitive(self, platform):
        _, _, tweets = platform
        all_tweets = [t for ts in tweets.values() for t in ts]
        stream = StreamingApi(all_tweets)
        stats = StreamStats()
        delivered = list(stream.filter(track=("COFFEE",), stats=stats))
        assert delivered
        assert all("coffee" in t.text.lower() for t in delivered)
        assert stats.delivered == len(delivered)
        assert stats.delivered + stats.filtered_out == len(all_tweets)

    def test_location_filter_requires_gps(self, platform):
        _, _, tweets = platform
        all_tweets = [t for ts in tweets.values() for t in ts]
        stream = StreamingApi(all_tweets)
        box = BoundingBox(33.0, 124.0, 39.0, 130.0)  # all of Korea
        delivered = list(stream.filter(locations=box))
        assert all(t.has_gps for t in delivered)
        assert len(delivered) == sum(1 for t in all_tweets if t.has_gps)

    def test_limit(self, platform):
        _, _, tweets = platform
        all_tweets = [t for ts in tweets.values() for t in ts]
        stream = StreamingApi(all_tweets)
        assert len(list(stream.filter(limit=5))) == 5

    def test_sample_deterministic(self, platform):
        _, _, tweets = platform
        all_tweets = [t for ts in tweets.values() for t in ts]
        stream = StreamingApi(all_tweets)
        a = [t.tweet_id for t in stream.sample(rate=0.1, seed=4)]
        b = [t.tweet_id for t in stream.sample(rate=0.1, seed=4)]
        assert a == b
        assert 0 < len(a) < len(all_tweets)

    def test_delivery_in_time_order(self, platform):
        _, _, tweets = platform
        all_tweets = [t for ts in tweets.values() for t in ts]
        stream = StreamingApi(all_tweets)
        delivered = [t.tweet_id for t in stream.filter(track=("coffee",))]
        assert delivered == sorted(delivered)
