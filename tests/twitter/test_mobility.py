"""Unit and property tests for the mobility models."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.gazetteer import Gazetteer
from repro.twitter.mobility import MobilityModel
from repro.twitter.models import MobilityClass


@pytest.fixture(scope="module")
def model():
    return MobilityModel(Gazetteer.korean())


def _home(gazetteer, key=("Seoul", "Mapo-gu")):
    return gazetteer.get(*key)


archetypes = st.sampled_from(list(MobilityClass))
seeds = st.integers(min_value=0, max_value=10_000)
home_keys = st.sampled_from([
    ("Seoul", "Mapo-gu"), ("Seoul", "Nowon-gu"), ("Busan", "Haeundae-gu"),
    ("Gyeonggi-do", "Suwon-si"), ("Jeju-do", "Jeju-si"), ("Daegu", "Suseong-gu"),
])


class TestProfiles:
    @given(archetypes, seeds, home_keys)
    @settings(max_examples=120, deadline=None)
    def test_profile_well_formed(self, archetype, seed, home_key):
        gazetteer = Gazetteer.korean()
        model = MobilityModel(gazetteer)
        profile = model.build_profile(
            gazetteer.get(*home_key), archetype, random.Random(seed)
        )
        assert len(profile.districts) == len(profile.weights)
        assert sum(profile.weights) == pytest.approx(1.0)
        assert all(w > 0 for w in profile.weights)
        # No duplicate districts in the support.
        keys = [d.key() for d in profile.districts]
        assert len(keys) == len(set(keys))

    @given(seeds, home_keys)
    @settings(max_examples=80, deadline=None)
    def test_home_anchored_home_dominates(self, seed, home_key):
        gazetteer = Gazetteer.korean()
        model = MobilityModel(gazetteer)
        profile = model.build_profile(
            gazetteer.get(*home_key), MobilityClass.HOME_ANCHORED, random.Random(seed)
        )
        assert profile.home_weight >= 0.5
        assert profile.home_weight == max(profile.weights) or profile.home_weight > 0.5

    @given(seeds)
    @settings(max_examples=80, deadline=None)
    def test_relocated_never_home(self, seed):
        gazetteer = Gazetteer.korean()
        model = MobilityModel(gazetteer)
        home = gazetteer.get("Seoul", "Mapo-gu")
        profile = model.build_profile(home, MobilityClass.RELOCATED, random.Random(seed))
        assert all(d.key() != home.key() for d in profile.districts)
        assert profile.home_weight == 0.0

    @given(seeds)
    @settings(max_examples=80, deadline=None)
    def test_fixed_elsewhere_never_home_and_small(self, seed):
        gazetteer = Gazetteer.korean()
        model = MobilityModel(gazetteer)
        home = gazetteer.get("Seoul", "Mapo-gu")
        profile = model.build_profile(
            home, MobilityClass.FIXED_ELSEWHERE, random.Random(seed)
        )
        assert all(d.key() != home.key() for d in profile.districts)
        assert len(profile.districts) <= 2

    @given(seeds)
    @settings(max_examples=80, deadline=None)
    def test_commuter_home_is_secondary(self, seed):
        gazetteer = Gazetteer.korean()
        model = MobilityModel(gazetteer)
        home = gazetteer.get("Seoul", "Mapo-gu")
        profile = model.build_profile(home, MobilityClass.COMMUTER, random.Random(seed))
        # Home present but not dominant: the workplace outweighs it.
        assert 0.0 < profile.home_weight < max(profile.weights)

    @given(seeds)
    @settings(max_examples=60, deadline=None)
    def test_wanderer_many_districts(self, seed):
        gazetteer = Gazetteer.korean()
        model = MobilityModel(gazetteer)
        home = gazetteer.get("Seoul", "Mapo-gu")
        profile = model.build_profile(home, MobilityClass.WANDERER, random.Random(seed))
        assert len(profile.districts) >= 4


class TestSampling:
    def test_sample_district_in_support(self, model, korean_gazetteer):
        profile = model.build_profile(
            _home(korean_gazetteer), MobilityClass.HOME_ANCHORED, random.Random(1)
        )
        rng = random.Random(2)
        support = {d.key() for d in profile.districts}
        for _ in range(50):
            assert profile.sample_district(rng).key() in support

    def test_sample_point_inside_district(self, model, korean_gazetteer):
        profile = model.build_profile(
            _home(korean_gazetteer), MobilityClass.HOME_ANCHORED, random.Random(1)
        )
        rng = random.Random(3)
        for _ in range(50):
            district, point = profile.sample_point(rng)
            assert district.center.distance_km(point) <= district.radius_km * 0.8 + 1e-6

    @given(archetypes, seeds, home_keys)
    @settings(max_examples=60, deadline=None)
    def test_sampled_points_reverse_geocode_to_their_district(
        self, archetype, seed, home_key
    ):
        """The generator's ground truth must agree with the resolver: a
        fix sampled in district D always reverse-geocodes to D.  Without
        the Voronoi-safe cap, edge-of-disc fixes in a district whose
        neighbour's centroid is closer flipped districts (a Dobong-gu fix
        resolving to Nowon-gu put a FIXED_ELSEWHERE user in Top-1)."""
        gazetteer = Gazetteer.korean()
        model = MobilityModel(gazetteer)
        profile = model.build_profile(
            gazetteer.get(*home_key), archetype, random.Random(seed)
        )
        rng = random.Random(seed + 1)
        for _ in range(25):
            district, point = profile.sample_point(rng)
            assert gazetteer.nearest(point).key() == district.key()

    def test_deterministic_given_seed(self, model, korean_gazetteer):
        home = _home(korean_gazetteer)
        a = model.build_profile(home, MobilityClass.WANDERER, random.Random(42))
        b = model.build_profile(home, MobilityClass.WANDERER, random.Random(42))
        assert [d.key() for d in a.districts] == [d.key() for d in b.districts]
        assert a.weights == b.weights
