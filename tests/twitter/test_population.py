"""Unit tests for the synthetic population generator."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.geo.forward import GeocodeStatus, TextGeocoder
from repro.twitter.models import MobilityClass, ProfileStyle
from repro.twitter.population import (
    PopulationConfig,
    PopulationGenerator,
    ProfileTextRenderer,
)


@pytest.fixture(scope="module")
def population(korean_gazetteer):
    config = PopulationConfig(size=400, seed=11)
    return PopulationGenerator(korean_gazetteer, config).generate()


class TestConfigValidation:
    def test_size_positive(self):
        with pytest.raises(ConfigurationError):
            PopulationConfig(size=0)

    def test_smartphone_rate_range(self):
        with pytest.raises(ConfigurationError):
            PopulationConfig(size=1, smartphone_rate=1.5)

    def test_gps_attach_range_order(self):
        with pytest.raises(ConfigurationError):
            PopulationConfig(size=1, gps_attach_range=(0.5, 0.1))

    def test_mix_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            PopulationConfig(size=1, mobility_mix={MobilityClass.WANDERER: 0.0})


class TestGeneration:
    def test_size_and_unique_ids(self, population):
        assert len(population) == 400
        ids = [s.user.user_id for s in population]
        assert len(set(ids)) == 400
        assert min(ids) == 1_000  # id_offset

    def test_deterministic(self, korean_gazetteer):
        config = PopulationConfig(size=50, seed=99)
        a = PopulationGenerator(korean_gazetteer, config).generate()
        b = PopulationGenerator(korean_gazetteer, config).generate()
        assert [s.user for s in a] == [s.user for s in b]
        assert [s.gps_attach_prob for s in a] == [s.gps_attach_prob for s in b]

    def test_different_seeds_differ(self, korean_gazetteer):
        a = PopulationGenerator(korean_gazetteer, PopulationConfig(size=50, seed=1)).generate()
        b = PopulationGenerator(korean_gazetteer, PopulationConfig(size=50, seed=2)).generate()
        assert [s.user for s in a] != [s.user for s in b]

    def test_home_district_exists(self, population, korean_gazetteer):
        for synthetic in population:
            user = synthetic.user
            assert korean_gazetteer.find(user.home_state, user.home_county) is not None

    def test_mobility_profile_home_matches_user(self, population):
        for synthetic in population:
            assert synthetic.mobility_profile.home.key() == (
                synthetic.user.home_state,
                synthetic.user.home_county,
            )

    def test_gps_only_with_smartphone(self, population):
        for synthetic in population:
            if not synthetic.user.has_smartphone:
                assert synthetic.gps_attach_prob == 0.0
            else:
                assert synthetic.gps_attach_prob > 0.0

    def test_all_styles_appear(self, population):
        styles = {s.user.profile_style for s in population}
        assert ProfileStyle.DISTRICT in styles
        assert ProfileStyle.VAGUE in styles
        assert ProfileStyle.EMPTY in styles

    def test_tweets_per_day_positive_and_capped(self, population):
        for synthetic in population:
            assert 0.0 < synthetic.tweets_per_day <= 40.0


class TestProfileTextGroundTruth:
    """The critical generator/geocoder contract: the rendered profile text
    classifies the way its style intends."""

    def test_district_style_resolves_to_home(self, population, korean_gazetteer):
        geocoder = TextGeocoder(korean_gazetteer)
        district_users = [
            s for s in population if s.user.profile_style is ProfileStyle.DISTRICT
        ]
        assert district_users
        resolved_home = 0
        for synthetic in district_users:
            result = geocoder.geocode(synthetic.user.profile_location)
            if result.status is GeocodeStatus.RESOLVED and result.district.key() == (
                synthetic.user.home_state,
                synthetic.user.home_county,
            ):
                resolved_home += 1
        # Ambiguous names (Jung-gu etc. written bare) may fail; the vast
        # majority must resolve to the true home.
        assert resolved_home / len(district_users) > 0.8

    @pytest.mark.parametrize(
        "style,expected_statuses",
        [
            (ProfileStyle.VAGUE, {GeocodeStatus.VAGUE}),
            (ProfileStyle.COUNTRY_ONLY, {GeocodeStatus.COUNTRY_ONLY}),
            (ProfileStyle.CITY_ONLY, {GeocodeStatus.STATE_ONLY}),
            (ProfileStyle.EMPTY, {GeocodeStatus.EMPTY}),
        ],
    )
    def test_insufficient_styles_filtered(
        self, population, korean_gazetteer, style, expected_statuses
    ):
        geocoder = TextGeocoder(korean_gazetteer)
        members = [s for s in population if s.user.profile_style is style]
        assert members
        for synthetic in members:
            result = geocoder.geocode(synthetic.user.profile_location)
            assert result.status in expected_statuses, synthetic.user.profile_location

    def test_garbage_never_resolves(self, population, korean_gazetteer):
        geocoder = TextGeocoder(korean_gazetteer)
        for synthetic in population:
            if synthetic.user.profile_style is ProfileStyle.GARBAGE:
                result = geocoder.geocode(synthetic.user.profile_location)
                assert result.status is not GeocodeStatus.RESOLVED


class TestRenderer:
    def test_coordinates_style_parses(self, korean_gazetteer):
        renderer = ProfileTextRenderer()
        home = korean_gazetteer.get("Seoul", "Gangnam-gu")
        text = renderer.render(home, ProfileStyle.COORDINATES, random.Random(5))
        lat, lon = (float(x) for x in text.split(","))
        assert abs(lat - home.center.lat) < 0.02
        assert abs(lon - home.center.lon) < 0.02

    def test_multi_style_contains_separator(self, korean_gazetteer):
        renderer = ProfileTextRenderer()
        home = korean_gazetteer.get("Seoul", "Gangnam-gu")
        text = renderer.render(home, ProfileStyle.MULTI, random.Random(5))
        assert "/" in text
