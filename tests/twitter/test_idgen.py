"""Unit and property tests for snowflake id generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.twitter.idgen import (
    SNOWFLAKE_EPOCH_MS,
    SnowflakeGenerator,
    snowflake_timestamp_ms,
)

timestamps = st.integers(
    min_value=SNOWFLAKE_EPOCH_MS + 1, max_value=SNOWFLAKE_EPOCH_MS + 10**11
)


class TestSnowflake:
    def test_timestamp_roundtrip(self):
        gen = SnowflakeGenerator()
        ts = SNOWFLAKE_EPOCH_MS + 123_456_789
        assert snowflake_timestamp_ms(gen.next_id(ts)) == ts

    def test_worker_id_bounds(self):
        SnowflakeGenerator(worker_id=0)
        SnowflakeGenerator(worker_id=1023)
        with pytest.raises(ValueError):
            SnowflakeGenerator(worker_id=1024)
        with pytest.raises(ValueError):
            SnowflakeGenerator(worker_id=-1)

    def test_pre_epoch_rejected(self):
        with pytest.raises(ValueError):
            SnowflakeGenerator().next_id(SNOWFLAKE_EPOCH_MS - 1)

    def test_same_millisecond_distinct_ids(self):
        gen = SnowflakeGenerator()
        ts = SNOWFLAKE_EPOCH_MS + 1000
        ids = [gen.next_id(ts) for _ in range(100)]
        assert len(set(ids)) == 100

    def test_sequence_overflow_rolls_timestamp(self):
        gen = SnowflakeGenerator()
        ts = SNOWFLAKE_EPOCH_MS + 1000
        ids = [gen.next_id(ts) for _ in range(5000)]
        assert len(set(ids)) == 5000
        assert snowflake_timestamp_ms(ids[-1]) > ts

    def test_backwards_timestamp_clamped(self):
        gen = SnowflakeGenerator()
        first = gen.next_id(SNOWFLAKE_EPOCH_MS + 5000)
        second = gen.next_id(SNOWFLAKE_EPOCH_MS + 1000)  # clock went backwards
        assert second > first

    @given(st.lists(timestamps, min_size=2, max_size=50))
    @settings(max_examples=100)
    def test_strictly_increasing_for_sorted_input(self, stamps):
        gen = SnowflakeGenerator(worker_id=3)
        ids = [gen.next_id(ts) for ts in sorted(stamps)]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    @given(timestamps, st.integers(min_value=0, max_value=1023))
    @settings(max_examples=60)
    def test_id_time_ordering_matches_snowflake_epoch(self, ts, worker):
        gen = SnowflakeGenerator(worker_id=worker)
        assert snowflake_timestamp_ms(gen.next_id(ts)) == ts
