"""Unit and property tests for the follower graph."""

from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, NotFoundError
from repro.twitter.social_graph import FollowerGraph, GraphConfig


def _reachable_by_follower_bfs(graph: FollowerGraph, seed: int) -> set[int]:
    seen = {seed}
    queue = deque([seed])
    while queue:
        current = queue.popleft()
        for follower in graph.followers_of(current):
            if follower not in seen:
                seen.add(follower)
                queue.append(follower)
    return seen


class TestBasics:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            FollowerGraph([])

    def test_add_edge_and_degree(self):
        graph = FollowerGraph([1, 2])
        assert graph.add_edge(1, 2)
        assert not graph.add_edge(1, 2)  # duplicate
        assert graph.degree(2) == (1, 0)
        assert graph.degree(1) == (0, 1)

    def test_self_follow_rejected(self):
        graph = FollowerGraph([1])
        with pytest.raises(ConfigurationError):
            graph.add_edge(1, 1)

    def test_unknown_users_rejected(self):
        graph = FollowerGraph([1])
        with pytest.raises(NotFoundError):
            graph.add_edge(1, 99)
        with pytest.raises(NotFoundError):
            graph.followers_of(99)

    def test_edges_listing(self):
        graph = FollowerGraph([1, 2, 3])
        graph.add_edge(2, 1)
        graph.add_edge(3, 1)
        edges = graph.edges()
        assert len(edges) == 2
        assert graph.edge_count() == 2
        assert all(e.followee_id == 1 for e in edges)


class TestGeneration:
    def test_deterministic(self):
        ids = list(range(100))
        a = FollowerGraph.generate(ids, GraphConfig(seed=3))
        b = FollowerGraph.generate(ids, GraphConfig(seed=3))
        assert a.edges() == b.edges()

    def test_all_reachable_from_seed(self):
        ids = list(range(500))
        graph = FollowerGraph.generate(ids, GraphConfig(seed=7))
        reachable = _reachable_by_follower_bfs(graph, graph.seed_user_id)
        assert reachable == set(ids)

    @given(st.integers(min_value=2, max_value=120), st.integers(min_value=0, max_value=500))
    @settings(max_examples=40, deadline=None)
    def test_reachability_property(self, size, seed):
        ids = list(range(1000, 1000 + size))
        graph = FollowerGraph.generate(ids, GraphConfig(seed=seed))
        assert _reachable_by_follower_bfs(graph, graph.seed_user_id) == set(ids)

    def test_mean_follows_scales_edges(self):
        ids = list(range(300))
        sparse = FollowerGraph.generate(ids, GraphConfig(mean_follows=2, seed=1))
        dense = FollowerGraph.generate(ids, GraphConfig(mean_follows=10, seed=1))
        assert dense.edge_count() > sparse.edge_count()

    def test_popularity_skew(self):
        # Preferential attachment must produce a heavy-tailed in-degree:
        # the most-followed account has far more followers than the median.
        ids = list(range(800))
        graph = FollowerGraph.generate(ids, GraphConfig(seed=5))
        followers = sorted(len(graph.followers_of(u)) for u in ids)
        top = followers[-1]
        median = followers[len(followers) // 2]
        assert top > max(10, 5 * max(1, median))

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            GraphConfig(mean_follows=0)
        with pytest.raises(ConfigurationError):
            GraphConfig(preferential_fraction=1.5)


class TestNetworkxExport:
    def test_structure_preserved(self):
        ids = list(range(200))
        graph = FollowerGraph.generate(ids, GraphConfig(seed=11))
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == len(ids)
        assert nx_graph.number_of_edges() == graph.edge_count()
        # Spot-check directionality: u -> v iff u follows v.
        some_user = ids[50]
        assert set(nx_graph.successors(some_user)) == set(
            graph.following_of(some_user)
        )
        assert set(nx_graph.predecessors(some_user)) == set(
            graph.followers_of(some_user)
        )

    def test_weakly_connected(self):
        import networkx as nx

        graph = FollowerGraph.generate(list(range(300)), GraphConfig(seed=2))
        assert nx.is_weakly_connected(graph.to_networkx())
