"""Unit and property tests for the Twitter data models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.point import GeoPoint
from repro.twitter.models import (
    GeotaggedObservation,
    MobilityClass,
    ProfileStyle,
    Tweet,
    TwitterUser,
)

safe_text = st.text(max_size=30)
names = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll"), max_codepoint=0x2FF),
    min_size=1,
    max_size=15,
)

users = st.builds(
    TwitterUser,
    user_id=st.integers(min_value=1, max_value=10**9),
    screen_name=names,
    profile_location=safe_text,
    created_at_ms=st.integers(min_value=0, max_value=2**41),
    has_smartphone=st.booleans(),
    home_state=names,
    home_county=names,
    mobility=st.sampled_from(MobilityClass),
    profile_style=st.sampled_from(ProfileStyle),
    followers=st.integers(min_value=0, max_value=10**6),
    friends=st.integers(min_value=0, max_value=10**6),
)

coordinates = st.one_of(
    st.none(),
    st.builds(
        GeoPoint,
        st.floats(min_value=-89.0, max_value=89.0),
        st.floats(min_value=-179.0, max_value=179.0),
    ),
)
tweets = st.builds(
    Tweet,
    tweet_id=st.integers(min_value=1, max_value=2**63),
    user_id=st.integers(min_value=1, max_value=10**9),
    created_at_ms=st.integers(min_value=0, max_value=2**41),
    text=safe_text,
    coordinates=coordinates,
    true_state=names,
    true_county=names,
)


class TestSerialization:
    @given(users)
    @settings(max_examples=100)
    def test_user_roundtrip(self, user):
        assert TwitterUser.from_dict(user.to_dict()) == user

    @given(tweets)
    @settings(max_examples=100)
    def test_tweet_roundtrip(self, tweet):
        assert Tweet.from_dict(tweet.to_dict()) == tweet

    def test_tweet_dict_omits_coords_when_absent(self):
        tweet = Tweet(tweet_id=1, user_id=2, created_at_ms=3, text="x")
        data = tweet.to_dict()
        assert "lat" not in data and "lon" not in data
        assert not tweet.has_gps

    def test_tweet_with_gps(self):
        tweet = Tweet(
            tweet_id=1, user_id=2, created_at_ms=3, text="x",
            coordinates=GeoPoint(37.5, 127.0),
        )
        assert tweet.has_gps
        assert tweet.to_dict()["lat"] == 37.5


class TestGeotaggedObservation:
    def test_matched(self):
        obs = GeotaggedObservation(1, "Seoul", "Jung-gu", "Seoul", "Jung-gu")
        assert obs.matched
        assert obs.profile_key() == obs.tweet_key()

    def test_not_matched_across_states(self):
        obs = GeotaggedObservation(1, "Seoul", "Jung-gu", "Busan", "Jung-gu")
        assert not obs.matched
