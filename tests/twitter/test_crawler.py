"""Unit tests for the follower-BFS crawler."""

import pytest

from repro.errors import ConfigurationError
from repro.geo.gazetteer import Gazetteer
from repro.twitter.api import RateLimitPolicy, RestApi
from repro.twitter.crawler import CrawlConfig, FollowerCrawler
from repro.twitter.population import PopulationConfig, PopulationGenerator
from repro.twitter.social_graph import FollowerGraph, GraphConfig


@pytest.fixture(scope="module")
def platform():
    population = PopulationGenerator(
        Gazetteer.korean(), PopulationConfig(size=150, seed=31)
    ).generate()
    graph = FollowerGraph.generate(
        [s.user.user_id for s in population], GraphConfig(seed=31)
    )
    users = {s.user.user_id: s.user for s in population}
    return users, graph


def _make_api(platform, **kwargs):
    users, graph = platform
    return RestApi(users=users, graph=graph, tweets_by_user={}, **kwargs)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CrawlConfig(max_users=0)
        with pytest.raises(ConfigurationError):
            CrawlConfig(max_users=1, max_api_calls=0)


class TestCrawl:
    def test_collects_exactly_max_users(self, platform):
        api = _make_api(platform)
        crawler = FollowerCrawler(api, CrawlConfig(max_users=40))
        result = crawler.crawl(platform[1].seed_user_id)
        assert len(result.users) == 40
        assert len(set(result.user_ids)) == 40

    def test_unlimited_crawl_discovers_everyone(self, platform):
        users, graph = platform
        api = _make_api(platform)
        crawler = FollowerCrawler(api, CrawlConfig(max_users=10_000))
        result = crawler.crawl(graph.seed_user_id)
        assert set(result.user_ids) == set(users)
        assert result.frontier_exhausted

    def test_seed_collected_first(self, platform):
        api = _make_api(platform)
        crawler = FollowerCrawler(api, CrawlConfig(max_users=10))
        result = crawler.crawl(platform[1].seed_user_id)
        assert result.user_ids[0] == platform[1].seed_user_id

    def test_rate_limits_waited_out(self, platform):
        api = _make_api(
            platform,
            follower_limit=RateLimitPolicy(window_s=900.0, calls_per_window=3),
        )
        crawler = FollowerCrawler(api, CrawlConfig(max_users=10_000))
        result = crawler.crawl(platform[1].seed_user_id)
        assert set(result.user_ids) == set(platform[0])
        assert result.rate_limit_waits > 0
        assert result.simulated_duration_s > 900.0

    def test_api_call_budget_respected(self, platform):
        api = _make_api(platform)
        crawler = FollowerCrawler(api, CrawlConfig(max_users=10_000, max_api_calls=5))
        result = crawler.crawl(platform[1].seed_user_id)
        assert result.api_calls <= 5
        assert len(result.users) < len(platform[0])

    def test_uses_batch_hydration(self, platform):
        api = _make_api(platform)
        crawler = FollowerCrawler(api, CrawlConfig(max_users=10_000))
        result = crawler.crawl(platform[1].seed_user_id)
        # Only the seed goes through users/show; everyone else arrives in
        # users/lookup batches (150 users -> far fewer than 150 calls).
        assert api.usage.user_lookup_calls == 1
        assert api.usage.batch_lookup_calls <= len(result.users) // 50 + 2

    def test_deterministic(self, platform):
        result_a = FollowerCrawler(
            _make_api(platform), CrawlConfig(max_users=60)
        ).crawl(platform[1].seed_user_id)
        result_b = FollowerCrawler(
            _make_api(platform), CrawlConfig(max_users=60)
        ).crawl(platform[1].seed_user_id)
        assert result_a.user_ids == result_b.user_ids
