"""Unit tests for tweet generation."""

import pytest

from repro.errors import ConfigurationError
from repro.geo.gazetteer import Gazetteer
from repro.twitter.population import PopulationConfig, PopulationGenerator
from repro.twitter.tweetgen import CollectionWindow, TweetGenerator

START_MS = 1_314_835_200_000


@pytest.fixture(scope="module")
def population():
    return PopulationGenerator(
        Gazetteer.korean(), PopulationConfig(size=60, seed=5)
    ).generate()


@pytest.fixture(scope="module")
def generator():
    return TweetGenerator(CollectionWindow(start_ms=START_MS, days=30), seed=5)


class TestWindow:
    def test_invalid_days(self):
        with pytest.raises(ConfigurationError):
            CollectionWindow(start_ms=0, days=0)

    def test_end(self):
        window = CollectionWindow(start_ms=1000, days=2)
        assert window.end_ms == 1000 + 2 * 86_400_000

    def test_default(self):
        assert CollectionWindow.default().days == 90


class TestGeneration:
    def test_tweets_inside_window(self, generator, population):
        window = generator.window
        for synthetic in population[:20]:
            for tweet in generator.tweets_for(synthetic):
                assert window.start_ms <= tweet.created_at_ms < window.end_ms

    def test_sorted_by_time_and_id(self, generator, population):
        for synthetic in population[:20]:
            tweets = generator.tweets_for(synthetic)
            stamps = [t.created_at_ms for t in tweets]
            ids = [t.tweet_id for t in tweets]
            assert stamps == sorted(stamps)
            assert ids == sorted(ids)

    def test_deterministic_per_user(self, population):
        window = CollectionWindow(start_ms=START_MS, days=30)
        a = TweetGenerator(window, seed=5).tweets_for(population[0])
        b = TweetGenerator(window, seed=5).tweets_for(population[0])
        assert [t.text for t in a] == [t.text for t in b]
        assert [t.created_at_ms for t in a] == [t.created_at_ms for t in b]

    def test_user_order_independence(self, generator, population):
        forward = {s.user.user_id: generator.tweets_for(s) for s in population[:10]}
        gen2 = TweetGenerator(CollectionWindow(start_ms=START_MS, days=30), seed=5)
        backward = {
            s.user.user_id: gen2.tweets_for(s) for s in reversed(population[:10])
        }
        for uid in forward:
            assert [t.text for t in forward[uid]] == [t.text for t in backward[uid]]

    def test_no_gps_without_smartphone(self, generator, population):
        for synthetic in population:
            if synthetic.gps_attach_prob == 0.0:
                assert all(not t.has_gps for t in generator.tweets_for(synthetic))

    def test_gps_rate_roughly_matches(self, generator, population):
        heavy = max(population, key=lambda s: s.gps_attach_prob * s.tweets_per_day)
        tweets = generator.tweets_for(heavy)
        if len(tweets) >= 50:
            rate = sum(1 for t in tweets if t.has_gps) / len(tweets)
            assert rate == pytest.approx(heavy.gps_attach_prob, abs=0.2)

    def test_true_district_in_mobility_support(self, generator, population):
        for synthetic in population[:20]:
            support = {d.key() for d in synthetic.mobility_profile.districts}
            for tweet in generator.tweets_for(synthetic):
                assert (tweet.true_state, tweet.true_county) in support

    def test_gps_point_inside_true_district(self, generator, population, korean_gazetteer):
        for synthetic in population[:20]:
            for tweet in generator.tweets_for(synthetic):
                if not tweet.has_gps:
                    continue
                district = korean_gazetteer.get(tweet.true_state, tweet.true_county)
                distance = district.center.distance_km(tweet.coordinates)
                assert distance <= district.radius_km * 0.8 + 1e-6

    def test_at_least_one_tweet_each(self, generator, population):
        for synthetic in population:
            assert len(generator.tweets_for(synthetic)) >= 1

    def test_stream_globally_ordered(self, generator, population):
        stream = list(generator.stream(population[:15]))
        ids = [t.tweet_id for t in stream]
        assert ids == sorted(ids)
        assert len(stream) == sum(
            len(generator.tweets_for(s)) for s in population[:15]
        )

    def test_global_id_time_coherence(self, generator, population):
        """Sorting the whole corpus by id must equal sorting by time —
        the property stream consumers (trend windows, Streaming API
        replay) rely on.  A shared snowflake generator across users
        silently breaks this by clamping timestamps forward."""
        stream = list(generator.stream(population))
        stamps = [t.created_at_ms for t in stream]  # stream is id-ordered
        assert stamps == sorted(stamps)
