"""Unit tests for study-result persistence."""

import json

import pytest

from repro.analysis.serialization import load_study, save_study
from repro.errors import StorageError


@pytest.fixture(scope="module")
def saved_path(small_ctx, tmp_path_factory):
    path = tmp_path_factory.mktemp("study") / "korean_study.json"
    save_study(small_ctx.korean_study, path)
    return path


class TestRoundtrip:
    def test_groupings_survive(self, saved_path, small_ctx):
        loaded = load_study(saved_path, small_ctx.korean_dataset.gazetteer)
        original = small_ctx.korean_study
        assert set(loaded.groupings) == set(original.groupings)
        for user_id, grouping in original.groupings.items():
            restored = loaded.groupings[user_id]
            assert restored.group is grouping.group
            assert restored.matched_rank == grouping.matched_rank
            assert restored.total_tweets == grouping.total_tweets
            assert list(restored.merged) == list(grouping.merged)

    def test_statistics_recomputed_identically(self, saved_path, small_ctx):
        loaded = load_study(saved_path, small_ctx.korean_dataset.gazetteer)
        assert loaded.statistics == small_ctx.korean_study.statistics

    def test_observations_and_profiles(self, saved_path, small_ctx):
        loaded = load_study(saved_path, small_ctx.korean_dataset.gazetteer)
        original = small_ctx.korean_study
        assert loaded.observations == original.observations
        assert {
            u: d.key() for u, d in loaded.profile_districts.items()
        } == {u: d.key() for u, d in original.profile_districts.items()}

    def test_funnel_and_api_stats(self, saved_path, small_ctx):
        loaded = load_study(saved_path, small_ctx.korean_dataset.gazetteer)
        original = small_ctx.korean_study
        assert loaded.funnel.as_dict() == original.funnel.as_dict()
        assert loaded.api_stats.requests == original.api_stats.requests
        assert loaded.api_stats.retries == original.api_stats.retries
        assert loaded.api_stats.retry_exhausted == original.api_stats.retry_exhausted

    def test_retry_counters_roundtrip(self, saved_path, tmp_path, small_ctx):
        """Non-zero retry accounting must survive save → load."""
        gazetteer = small_ctx.korean_dataset.gazetteer
        document = json.loads(saved_path.read_text(encoding="utf-8"))
        document["api_stats"]["retries"] = 7
        document["api_stats"]["retry_exhausted"] = 2
        path = tmp_path / "retried.json"
        path.write_text(json.dumps(document), encoding="utf-8")
        loaded = load_study(path, gazetteer)
        assert loaded.api_stats.retries == 7
        assert loaded.api_stats.retry_exhausted == 2

    def test_legacy_document_without_retry_counters(
        self, saved_path, tmp_path, small_ctx
    ):
        """Documents written before retry accounting load with zeros."""
        gazetteer = small_ctx.korean_dataset.gazetteer
        document = json.loads(saved_path.read_text(encoding="utf-8"))
        document["api_stats"].pop("retries", None)
        document["api_stats"].pop("retry_exhausted", None)
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(document), encoding="utf-8")
        loaded = load_study(path, gazetteer)
        assert loaded.api_stats.retries == 0
        assert loaded.api_stats.retry_exhausted == 0


class TestErrors:
    def test_missing_file(self, tmp_path, korean_gazetteer):
        with pytest.raises(StorageError):
            load_study(tmp_path / "nope.json", korean_gazetteer)

    def test_bad_json(self, tmp_path, korean_gazetteer):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(StorageError):
            load_study(path, korean_gazetteer)

    def test_version_mismatch(self, saved_path, tmp_path, korean_gazetteer):
        document = json.loads(saved_path.read_text(encoding="utf-8"))
        document["format_version"] = 99
        path = tmp_path / "future.json"
        path.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(StorageError):
            load_study(path, korean_gazetteer)
