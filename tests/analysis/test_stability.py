"""Unit tests for the split-half stability analysis."""

import pytest

from repro.analysis.stability import (
    median_timestamp,
    render_stability,
    split_half_stability,
)
from repro.errors import InsufficientDataError
from repro.grouping.topk import TopKGroup
from repro.twitter.models import GeotaggedObservation


def _obs(user_id, profile_county, tweet_county, timestamp_ms):
    return GeotaggedObservation(
        user_id=user_id,
        profile_state="Seoul",
        profile_county=profile_county,
        tweet_state="Seoul",
        tweet_county=tweet_county,
        timestamp_ms=timestamp_ms,
    )


def _stable_user(user_id, start_ms):
    """A user who is Top-1 in both halves."""
    rows = []
    for i in range(6):
        rows.append(_obs(user_id, "A", "A", start_ms + i))
    for i in range(2):
        rows.append(_obs(user_id, "A", "B", start_ms + 100 + i))
    for i in range(6):
        rows.append(_obs(user_id, "A", "A", start_ms + 1_000 + i))
    return rows


def _flipping_user(user_id, start_ms):
    """Top-1 in the first half, None in the second (moved away)."""
    rows = [_obs(user_id, "A", "A", start_ms + i) for i in range(5)]
    rows += [_obs(user_id, "A", "C", start_ms + 1_000 + i) for i in range(5)]
    return rows


class TestMedian:
    def test_median(self):
        observations = [_obs(1, "A", "A", t) for t in (5, 1, 9)]
        assert median_timestamp(observations) == 5

    def test_empty_raises(self):
        with pytest.raises(InsufficientDataError):
            median_timestamp([])


class TestSplitHalf:
    def test_stable_user_agrees(self):
        result = split_half_stability(_stable_user(1, 0), pivot_ms=500)
        assert result.users_in_both == 1
        assert result.same_group == 1
        assert result.agreement_rate == 1.0
        assert result.transitions[(TopKGroup.TOP_1, TopKGroup.TOP_1)] == 1

    def test_flipping_user_counted_as_churn(self):
        result = split_half_stability(_flipping_user(2, 0), pivot_ms=500)
        assert result.users_in_both == 1
        assert result.same_group == 0
        assert result.none_churn_rate == 1.0
        assert result.transitions[(TopKGroup.TOP_1, TopKGroup.NONE)] == 1

    def test_user_in_one_half_only_excluded(self):
        observations = _stable_user(1, 0) + [
            _obs(9, "B", "B", 10)  # user 9 tweets only in the first half
        ]
        result = split_half_stability(observations, pivot_ms=500)
        assert result.users_first == 2
        assert result.users_second == 1
        assert result.users_in_both == 1

    def test_default_pivot_is_median(self):
        observations = _stable_user(1, 0)
        auto = split_half_stability(observations)
        manual = split_half_stability(
            observations, pivot_ms=median_timestamp(observations)
        )
        assert auto.transitions == manual.transitions

    def test_degenerate_pivot_raises(self):
        observations = _stable_user(1, 0)
        with pytest.raises(InsufficientDataError):
            split_half_stability(observations, pivot_ms=-1)

    def test_mixed_population(self):
        observations = []
        for uid in range(10):
            observations += _stable_user(uid, 0)
        for uid in range(100, 104):
            observations += _flipping_user(uid, 0)
        result = split_half_stability(observations, pivot_ms=500)
        assert result.users_in_both == 14
        assert result.same_group == 10
        assert result.agreement_rate == pytest.approx(10 / 14)
        assert result.none_churn_rate == pytest.approx(4 / 14)

    def test_render(self):
        result = split_half_stability(_stable_user(1, 0), pivot_ms=500)
        text = render_stability(result)
        assert "Split-half stability" in text
        assert "(stable)" in text


class TestOnGeneratedCorpus:
    def test_study_groups_are_reasonably_stable(self, small_ctx):
        observations = small_ctx.korean_study.observations
        result = split_half_stability(observations)
        assert result.users_in_both > 30
        # Mobility is a persistent trait in the generator, so groups
        # should agree across halves far above chance (1/7).
        assert result.agreement_rate > 0.45
