"""Unit tests for the end-to-end correlation study on a hand-built corpus.

A tiny, fully controlled corpus where every user's expected Top-k outcome
is known exactly — the study must recover it through forward geocoding,
the simulated Yahoo client, and the grouping method.
"""

import pytest

from repro.analysis.correlation import run_study
from repro.geo.gazetteer import Gazetteer
from repro.grouping.topk import TopKGroup
from repro.storage.tweetstore import TweetStore
from repro.storage.userstore import UserStore
from repro.twitter.idgen import SnowflakeGenerator
from repro.twitter.models import MobilityClass, ProfileStyle, Tweet, TwitterUser


def _user(user_id, profile_location, home=("Seoul", "Mapo-gu")):
    return TwitterUser(
        user_id=user_id,
        screen_name=f"u{user_id}",
        profile_location=profile_location,
        created_at_ms=1_300_000_000_000,
        has_smartphone=True,
        home_state=home[0],
        home_county=home[1],
        mobility=MobilityClass.HOME_ANCHORED,
        profile_style=ProfileStyle.DISTRICT,
    )


@pytest.fixture(scope="module")
def corpus():
    gazetteer = Gazetteer.korean()
    idgen = SnowflakeGenerator()
    base_ms = 1_314_835_200_000

    users = UserStore()
    tweets = TweetStore()

    def add_gps_tweets(user_id, district_key, count):
        district = gazetteer.get(*district_key)
        for i in range(count):
            ts = base_ms + user_id * 10_000 + i * 1_000
            tweets.insert(
                Tweet(
                    tweet_id=idgen.next_id(ts),
                    user_id=user_id,
                    created_at_ms=ts,
                    text="hello",
                    coordinates=district.center,
                    true_state=district.state,
                    true_county=district.name,
                )
            )

    # User 1: Top-1 (mostly tweets at home Mapo-gu).
    users.insert(_user(1, "Mapo-gu, Seoul"))
    add_gps_tweets(1, ("Seoul", "Mapo-gu"), 5)
    add_gps_tweets(1, ("Seoul", "Jongno-gu"), 2)

    # User 2: Top-2 (work district dominates, home second).
    users.insert(_user(2, "Uiwang-si, Gyeonggi-do", home=("Gyeonggi-do", "Uiwang-si")))
    add_gps_tweets(2, ("Gyeonggi-do", "Seongnam-si"), 4)
    add_gps_tweets(2, ("Gyeonggi-do", "Uiwang-si"), 2)

    # User 3: None (never tweets at stated home).
    users.insert(_user(3, "Haeundae, Busan", home=("Busan", "Haeundae-gu")))
    add_gps_tweets(3, ("Busan", "Suyeong-gu"), 3)

    # User 4: vague profile -> filtered out despite GPS tweets.
    users.insert(_user(4, "Earth"))
    add_gps_tweets(4, ("Seoul", "Mapo-gu"), 3)

    # User 5: well-defined profile but no GPS tweets -> filtered out.
    users.insert(_user(5, "Nowon-gu, Seoul", home=("Seoul", "Nowon-gu")))
    tweets.insert(
        Tweet(
            tweet_id=idgen.next_id(base_ms + 999_000),
            user_id=5,
            created_at_ms=base_ms + 999_000,
            text="no gps here",
        )
    )

    return users, tweets, gazetteer


def test_study_recovers_expected_groups(corpus):
    users, tweets, gazetteer = corpus
    result = run_study(users, tweets, gazetteer, dataset_name="hand")

    assert result.funnel.crawled_users == 5
    assert result.funnel.well_defined_users == 4  # user 4 dropped (vague)
    assert result.funnel.users_with_gps == 3  # user 5 dropped (no GPS)
    assert result.funnel.study_users == 3

    assert result.groupings[1].group is TopKGroup.TOP_1
    assert result.groupings[2].group is TopKGroup.TOP_2
    assert result.groupings[3].group is TopKGroup.NONE
    assert 4 not in result.groupings
    assert 5 not in result.groupings


def test_study_statistics_and_profiles(corpus):
    users, tweets, gazetteer = corpus
    result = run_study(users, tweets, gazetteer)

    assert result.statistics.total_users == 3
    assert result.statistics.total_tweets == 16
    assert result.profile_districts[1].key() == ("Seoul", "Mapo-gu")
    assert result.profile_districts[3].key() == ("Busan", "Haeundae-gu")
    # The simulated Yahoo client was actually exercised.
    assert result.api_stats.requests > 0


def test_min_gps_threshold(corpus):
    users, tweets, gazetteer = corpus
    result = run_study(users, tweets, gazetteer, min_gps_tweets=4)
    # Only users 1 (7 GPS tweets) and 2 (6) qualify.
    assert set(result.groupings) == {1, 2}
