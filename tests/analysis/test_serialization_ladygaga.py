"""Persistence round trip for the worldwide (combined-gazetteer) study."""

from repro.analysis.serialization import load_study, save_study


def test_ladygaga_study_roundtrip(small_ctx, tmp_path):
    """World-city district keys (spaces, non-Korean states) must survive
    the save/load cycle against the combined gazetteer."""
    original = small_ctx.ladygaga_study
    path = tmp_path / "ladygaga_study.json"
    save_study(original, path)

    loaded = load_study(path, small_ctx.ladygaga_dataset.gazetteer)

    assert loaded.dataset_name == "Lady Gaga"
    assert loaded.statistics == original.statistics
    assert set(loaded.groupings) == set(original.groupings)
    # World-city profile districts resolve back to identical keys.
    assert {
        u: d.key() for u, d in loaded.profile_districts.items()
    } == {u: d.key() for u, d in original.profile_districts.items()}
    # At least one non-Korean district must be present to make the test
    # meaningful.
    assert any(
        d.country != "South Korea" for d in loaded.profile_districts.values()
    )
