"""Unit and property tests for the significance machinery."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.significance import (
    bootstrap_share_intervals,
    chi2_sf,
    chi_square_independence,
    compare_group_distributions,
)
from repro.errors import InsufficientDataError
from repro.grouping.topk import TopKGroup, group_users
from repro.twitter.models import GeotaggedObservation


def _obs(user_id, profile_county, tweet_county):
    return GeotaggedObservation(
        user_id=user_id,
        profile_state="Seoul",
        profile_county=profile_county,
        tweet_state="Seoul",
        tweet_county=tweet_county,
    )


def _groupings(top1_users, none_users):
    observations = []
    for uid in range(top1_users):
        observations.append(_obs(uid, "A", "A"))
    for uid in range(1000, 1000 + none_users):
        observations.append(_obs(uid, "A", "B"))
    return group_users(observations)


class TestChi2Sf:
    @pytest.mark.parametrize(
        "x,dof,expected",
        [
            (0.0, 1, 1.0),
            (3.841, 1, 0.05),       # classic 5 % critical value
            (5.991, 2, 0.05),
            (16.919, 9, 0.05),
            (6.635, 1, 0.01),
        ],
    )
    def test_critical_values(self, x, dof, expected):
        assert chi2_sf(x, dof) == pytest.approx(expected, abs=2e-4)

    def test_negative_x(self):
        assert chi2_sf(-1.0, 3) == 1.0

    def test_invalid_dof(self):
        with pytest.raises(InsufficientDataError):
            chi2_sf(1.0, 0)

    @given(st.floats(min_value=0.01, max_value=200.0), st.integers(min_value=1, max_value=30))
    @settings(max_examples=100)
    def test_is_valid_survival_function(self, x, dof):
        p = chi2_sf(x, dof)
        assert 0.0 <= p <= 1.0
        # Monotone decreasing in x.
        assert chi2_sf(x + 1.0, dof) <= p + 1e-12

    def test_matches_exact_formula_dof2(self):
        # For dof=2 the survival function is exactly exp(-x/2).
        for x in (0.5, 1.0, 4.0, 10.0, 40.0):
            assert chi2_sf(x, 2) == pytest.approx(math.exp(-x / 2.0), rel=1e-9)


class TestChiSquareIndependence:
    def test_identical_distributions_not_significant(self):
        result = chi_square_independence([50, 30, 20], [100, 60, 40])
        assert result.statistic == pytest.approx(0.0, abs=1e-9)
        assert result.p_value == pytest.approx(1.0, abs=1e-9)
        assert not result.significant()

    def test_clearly_different_distributions(self):
        result = chi_square_independence([90, 10], [10, 90])
        assert result.significant(alpha=0.001)
        assert result.dof == 1

    def test_zero_categories_dropped(self):
        result = chi_square_independence([50, 0, 50], [40, 0, 60])
        assert result.dof == 1

    def test_mismatched_lengths(self):
        with pytest.raises(InsufficientDataError):
            chi_square_independence([1, 2], [1, 2, 3])

    def test_empty_sample(self):
        with pytest.raises(InsufficientDataError):
            chi_square_independence([0, 0], [5, 5])

    @given(
        st.lists(st.integers(min_value=1, max_value=200), min_size=2, max_size=7),
        st.integers(min_value=2, max_value=20),
    )
    @settings(max_examples=60)
    def test_scaled_sample_is_independent(self, counts, factor):
        """A sample vs a scaled copy of itself has statistic ~0."""
        scaled = [c * factor for c in counts]
        result = chi_square_independence(counts, scaled)
        assert result.statistic == pytest.approx(0.0, abs=1e-9)


class TestBootstrap:
    def test_intervals_bracket_share(self):
        groupings = _groupings(top1_users=60, none_users=40)
        intervals = bootstrap_share_intervals(groupings.values(), n_resamples=400)
        top1 = intervals[TopKGroup.TOP_1]
        assert top1.share == pytest.approx(0.6)
        assert top1.contains(top1.share)
        assert 0.0 <= top1.low <= top1.share <= top1.high <= 1.0

    def test_more_users_tighter_interval(self):
        small = bootstrap_share_intervals(
            _groupings(30, 20).values(), n_resamples=400
        )[TopKGroup.TOP_1]
        large = bootstrap_share_intervals(
            _groupings(600, 400).values(), n_resamples=400
        )[TopKGroup.TOP_1]
        assert (large.high - large.low) < (small.high - small.low)

    def test_deterministic(self):
        groupings = _groupings(30, 20)
        a = bootstrap_share_intervals(groupings.values(), seed=3)
        b = bootstrap_share_intervals(groupings.values(), seed=3)
        assert a == b

    def test_empty_raises(self):
        with pytest.raises(InsufficientDataError):
            bootstrap_share_intervals([])

    def test_coverage_sanity(self):
        """~95 % of bootstrap intervals from repeated draws of a known
        Bernoulli(0.6) population should cover 0.6."""
        rng = random.Random(9)
        covered = 0
        trials = 30
        for trial in range(trials):
            top1 = sum(1 for _ in range(200) if rng.random() < 0.6)
            groupings = _groupings(top1, 200 - top1)
            interval = bootstrap_share_intervals(
                groupings.values(), n_resamples=300, seed=trial
            )[TopKGroup.TOP_1]
            if interval.contains(0.6):
                covered += 1
        assert covered >= trials * 0.8


class TestCompareDistributions:
    def test_same_population_not_significant(self):
        groupings = _groupings(60, 40)
        result = compare_group_distributions(groupings.values(), groupings.values())
        assert not result.significant()

    def test_opposite_populations_significant(self):
        a = _groupings(90, 10)
        b = _groupings(10, 90)
        result = compare_group_distributions(a.values(), b.values())
        assert result.significant(alpha=0.001)

    def test_korean_vs_ladygaga(self, small_ctx):
        result = compare_group_distributions(
            small_ctx.korean_study.groupings.values(),
            small_ctx.ladygaga_study.groupings.values(),
        )
        assert 0.0 <= result.p_value <= 1.0
        assert result.dof >= 1
