"""Unit tests for the mention-vs-GPS correlation study."""

import pytest

from repro.analysis.mentions import MentionCorrelationStudy, render_mention_agreement
from repro.errors import InsufficientDataError
from repro.geo.gazetteer import Gazetteer
from repro.geo.mentions import PlaceMentionExtractor
from repro.geo.reverse import ReverseGeocoder
from repro.twitter.models import Tweet


@pytest.fixture(scope="module")
def study(korean_gazetteer):
    return MentionCorrelationStudy(
        PlaceMentionExtractor(korean_gazetteer),
        ReverseGeocoder(korean_gazetteer),
    )


def _tweet(tweet_id, text, district=None):
    return Tweet(
        tweet_id=tweet_id,
        user_id=tweet_id,
        created_at_ms=1_314_835_200_000 + tweet_id,
        text=text,
        coordinates=district.center if district is not None else None,
    )


class TestCorrelation:
    def test_agreeing_mention(self, study, korean_gazetteer):
        gangnam = korean_gazetteer.get("Seoul", "Gangnam-gu")
        result = study.run([_tweet(1, "coffee in gangnam now", gangnam)])
        assert result.gps_tweets == 1
        assert result.tweets_with_mentions == 1
        assert result.agreements == 1
        assert result.agreement_rate == 1.0
        assert result.median_distance_km < gangnam.radius_km

    def test_disagreeing_mention(self, study, korean_gazetteer):
        gangnam = korean_gazetteer.get("Seoul", "Gangnam-gu")
        result = study.run([_tweet(1, "missing haeundae so much", gangnam)])
        assert result.tweets_with_mentions == 1
        assert result.agreements == 0
        assert result.same_state == 0  # Haeundae is in Busan
        assert result.median_distance_km > 100.0

    def test_same_state_counted(self, study, korean_gazetteer):
        gangnam = korean_gazetteer.get("Seoul", "Gangnam-gu")
        result = study.run([_tweet(1, "heading to hongdae later", gangnam)])
        assert result.agreements == 0
        assert result.same_state == 1  # Mapo-gu is also Seoul

    def test_tweets_without_mentions_counted(self, study, korean_gazetteer):
        gangnam = korean_gazetteer.get("Seoul", "Gangnam-gu")
        result = study.run(
            [_tweet(1, "so sleepy today", gangnam), _tweet(2, "in gangnam", gangnam)]
        )
        assert result.gps_tweets == 2
        assert result.tweets_with_mentions == 1

    def test_non_gps_tweets_ignored(self, study, korean_gazetteer):
        gangnam = korean_gazetteer.get("Seoul", "Gangnam-gu")
        result = study.run(
            [_tweet(1, "in gangnam", gangnam), _tweet(2, "in gangnam but no gps")]
        )
        assert result.gps_tweets == 1

    def test_all_non_gps_raises(self, study):
        with pytest.raises(InsufficientDataError):
            study.run([_tweet(1, "no gps anywhere")])

    def test_render(self, study, korean_gazetteer):
        gangnam = korean_gazetteer.get("Seoul", "Gangnam-gu")
        result = study.run([_tweet(1, "coffee in gangnam", gangnam)])
        text = render_mention_agreement(result)
        assert "third spatial attribute" in text
        assert "100.0%" in text


class TestOnGeneratedCorpus:
    def test_generated_mentions_mostly_agree(self, small_ctx):
        """The tweet generator mentions the *current* district by name, so
        mention-vs-GPS agreement must be high on the synthetic corpus."""
        gazetteer = small_ctx.korean_dataset.gazetteer
        study = MentionCorrelationStudy(
            PlaceMentionExtractor(gazetteer), ReverseGeocoder(gazetteer)
        )
        result = study.run(list(small_ctx.korean_dataset.tweets.gps_tweets()))
        assert result.tweets_with_mentions > 20
        assert result.same_state_rate > 0.8
        assert result.agreement_rate > 0.5
