"""Unit tests for CSV export, plus scipy cross-validation of chi2_sf."""

import csv

import pytest

from repro.analysis.export import (
    export_group_statistics,
    export_groupings,
    export_observations,
)
from repro.analysis.significance import chi2_sf
from repro.grouping.stats import compute_group_statistics
from repro.grouping.topk import group_users
from repro.twitter.models import GeotaggedObservation


def _obs(user_id, profile_county, tweet_county):
    return GeotaggedObservation(
        user_id=user_id,
        profile_state="Seoul",
        profile_county=profile_county,
        tweet_state="Seoul",
        tweet_county=tweet_county,
        timestamp_ms=user_id * 1000,
    )


@pytest.fixture
def study_bits():
    observations = (
        [_obs(1, "A", "A")] * 3 + [_obs(1, "A", "B")] + [_obs(2, "B", "C")] * 2
    )
    groupings = group_users(observations)
    return observations, groupings, compute_group_statistics(groupings.values())


class TestCsvExports:
    def test_group_statistics_csv(self, study_bits, tmp_path):
        _, _, stats = study_bits
        path = tmp_path / "stats.csv"
        assert export_group_statistics(stats, path) == 7
        with path.open(newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 7
        top1 = next(r for r in rows if r["group"] == "Top-1")
        assert int(top1["users"]) == 1
        assert float(top1["user_share"]) == pytest.approx(0.5)

    def test_groupings_csv(self, study_bits, tmp_path):
        _, groupings, _ = study_bits
        path = tmp_path / "groupings.csv"
        assert export_groupings(groupings.values(), path) == 2
        with path.open(newline="") as handle:
            rows = {int(r["user_id"]): r for r in csv.DictReader(handle)}
        assert rows[1]["group"] == "Top-1"
        assert rows[1]["matched_rank"] == "1"
        assert rows[2]["group"] == "None"
        assert rows[2]["matched_rank"] == ""  # None serialised as empty

    def test_observations_csv(self, study_bits, tmp_path):
        observations, _, _ = study_bits
        path = tmp_path / "observations.csv"
        assert export_observations(observations, path) == 6
        with path.open(newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert sum(int(r["matched"]) for r in rows) == 3
        assert rows[0]["profile_state"] == "Seoul"


class TestChi2AgainstScipy:
    """Cross-validate the from-scratch chi-square survival function
    against scipy's reference implementation."""

    @pytest.mark.parametrize("dof", [1, 2, 3, 5, 10, 25])
    @pytest.mark.parametrize("x", [0.01, 0.5, 1.0, 3.84, 10.0, 35.0, 80.0])
    def test_matches_scipy(self, x, dof):
        scipy_stats = pytest.importorskip("scipy.stats")
        ours = chi2_sf(x, dof)
        reference = float(scipy_stats.chi2.sf(x, dof))
        assert ours == pytest.approx(reference, rel=1e-9, abs=1e-12)
