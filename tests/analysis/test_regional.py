"""Unit tests for the regional breakdown."""

import pytest

from repro.analysis.regional import regional_breakdown, render_regional_breakdown
from repro.errors import InsufficientDataError
from repro.grouping.topk import group_users
from repro.twitter.models import GeotaggedObservation


def _obs(user_id, state, profile_county, tweet_county):
    return GeotaggedObservation(
        user_id=user_id,
        profile_state=state,
        profile_county=profile_county,
        tweet_state=state,
        tweet_county=tweet_county,
    )


@pytest.fixture
def fixture_data(korean_gazetteer):
    observations = []
    profile_districts = {}
    # 12 Seoul users: 6 Top-1, 6 None.
    for uid in range(12):
        county = "Mapo-gu"
        profile_districts[uid] = korean_gazetteer.get("Seoul", county)
        if uid < 6:
            observations.append(_obs(uid, "Seoul", county, county))
        else:
            observations.append(_obs(uid, "Seoul", county, "Guro-gu"))
    # 10 Gyeonggi users: all Top-1.
    for uid in range(100, 110):
        county = "Suwon-si"
        profile_districts[uid] = korean_gazetteer.get("Gyeonggi-do", county)
        observations.append(_obs(uid, "Gyeonggi-do", county, county))
    # 3 Busan users: below min_users, dropped.
    for uid in range(200, 203):
        county = "Haeundae-gu"
        profile_districts[uid] = korean_gazetteer.get("Busan", county)
        observations.append(_obs(uid, "Busan", county, county))
    return group_users(observations), profile_districts


class TestBreakdown:
    def test_rows_and_shares(self, fixture_data):
        groupings, profile_districts = fixture_data
        rows = regional_breakdown(groupings, profile_districts, min_users=10)
        states = {r.state: r for r in rows}
        assert set(states) == {"Seoul", "Gyeonggi-do"}
        assert states["Seoul"].users == 12
        assert states["Seoul"].top1_share == pytest.approx(0.5)
        assert states["Seoul"].matched_share == pytest.approx(0.5)
        assert states["Gyeonggi-do"].top1_share == 1.0

    def test_sorted_by_size(self, fixture_data):
        groupings, profile_districts = fixture_data
        rows = regional_breakdown(groupings, profile_districts, min_users=10)
        assert [r.users for r in rows] == sorted(
            (r.users for r in rows), reverse=True
        )

    def test_small_regions_dropped(self, fixture_data):
        groupings, profile_districts = fixture_data
        rows = regional_breakdown(groupings, profile_districts, min_users=10)
        assert all(r.state != "Busan" for r in rows)

    def test_no_region_clears_threshold(self, fixture_data):
        groupings, profile_districts = fixture_data
        with pytest.raises(InsufficientDataError):
            regional_breakdown(groupings, profile_districts, min_users=1_000)

    def test_render(self, fixture_data):
        groupings, profile_districts = fixture_data
        text = render_regional_breakdown(
            regional_breakdown(groupings, profile_districts, min_users=10)
        )
        assert "Seoul" in text
        assert "Top-1" in text

    def test_on_generated_corpus(self, small_ctx):
        rows = regional_breakdown(
            small_ctx.korean_study.groupings,
            small_ctx.korean_study.profile_districts,
            min_users=5,
        )
        assert rows
        assert sum(r.users for r in rows) <= small_ctx.korean_study.statistics.total_users
        for row in rows:
            assert 0.0 <= row.top1_share <= row.matched_share <= 1.0
