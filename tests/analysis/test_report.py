"""Unit tests for the plain-text report renderers."""

import pytest

from repro.analysis.report import (
    render_comparison,
    render_dataset_summary,
    render_fig6,
    render_fig7,
    render_funnel,
    render_merged_strings,
    render_tweet_distribution,
)
from repro.datasets.refine import RefinementFunnel
from repro.grouping.merge import merge_strings
from repro.grouping.stats import compute_group_statistics
from repro.grouping.strings import LocationString
from repro.grouping.topk import group_users
from repro.twitter.models import DatasetSummary, GeotaggedObservation


def _obs(user_id, profile_county, tweet_county):
    return GeotaggedObservation(
        user_id=user_id,
        profile_state="Seoul",
        profile_county=profile_county,
        tweet_state="Seoul",
        tweet_county=tweet_county,
    )


@pytest.fixture
def stats():
    observations = (
        [_obs(1, "A", "A")] * 3 + [_obs(1, "A", "B")]
        + [_obs(2, "B", "C")] * 2
    )
    return compute_group_statistics(group_users(observations).values())


class TestFigureRenderers:
    def test_fig6_has_all_groups_and_overall(self, stats):
        text = render_fig6(stats)
        for label in ("Top-1", "Top-5", "Top-6+", "None", "overall"):
            assert label in text

    def test_fig7_counts_and_percentages(self, stats):
        text = render_fig7(stats)
        assert "50.00%" in text  # both users split Top-1 / None
        assert "total" in text

    def test_tweet_distribution(self, stats):
        text = render_tweet_distribution(stats)
        assert "Number of tweets" in text
        assert str(stats.total_tweets) in text

    def test_custom_title(self, stats):
        assert render_fig6(stats, title="My title").startswith("My title")


class TestComparison:
    def test_both_metrics(self, stats):
        users_text = render_comparison(stats, stats, metric="user_share")
        locations_text = render_comparison(stats, stats, metric="avg_tweet_locations")
        assert "Korean" in users_text and "Lady Gaga" in users_text
        assert "Average number" in locations_text

    def test_unknown_metric_rejected(self, stats):
        with pytest.raises(ValueError):
            render_comparison(stats, stats, metric="nope")


class TestOtherRenderers:
    def test_funnel(self):
        funnel = RefinementFunnel(crawled_users=100, well_defined_users=40,
                                  users_with_gps=10, total_tweets=5000,
                                  gps_tweets=50, resolved_observations=45,
                                  study_users=9)
        funnel.profile_status_counts["vague"] = 30
        text = render_funnel(funnel)
        assert "crawled users" in text
        assert "vague" in text
        assert "9" in text

    def test_dataset_summary(self):
        text = render_dataset_summary(
            DatasetSummary(name="Korean", collection_api="Search API",
                           user_count=10, tweet_count=100, geotagged_tweet_count=5),
            DatasetSummary(name="Lady Gaga", collection_api="Streaming API",
                           user_count=7, tweet_count=70, geotagged_tweet_count=3),
        )
        assert "Korean" in text and "Lady Gaga" in text
        assert "Search API" in text

    def test_merged_strings_marks_match(self):
        records = [
            LocationString(1, "Seoul", "A", "Seoul", "A"),
            LocationString(1, "Seoul", "A", "Seoul", "B"),
        ]
        merged = merge_strings(records)
        text = render_merged_strings(merged[1])
        assert "<- matched" in text
        assert text.count("<- matched") == 1
