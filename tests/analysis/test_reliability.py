"""Unit tests for reliability weight factors."""

import pytest

from repro.analysis.reliability import ReliabilityTable, WeightingScheme
from repro.grouping.stats import compute_group_statistics
from repro.grouping.topk import TopKGroup, group_users
from repro.twitter.models import GeotaggedObservation


def _obs(user_id, profile_county, tweet_county):
    return GeotaggedObservation(
        user_id=user_id,
        profile_state="Seoul",
        profile_county=profile_county,
        tweet_state="Seoul",
        tweet_county=tweet_county,
    )


@pytest.fixture
def study():
    observations = (
        [_obs(1, "A", "A")] * 8 + [_obs(1, "A", "B")] * 2     # Top-1, 80% matched
        + [_obs(2, "B", "C")] * 6 + [_obs(2, "B", "B")] * 4   # Top-2, 40% matched
        + [_obs(3, "C", "D")] * 5                             # None
    )
    groupings = group_users(observations)
    return groupings, compute_group_statistics(groupings.values())


class TestTable:
    def test_group_weights_are_matched_shares(self, study):
        _, stats = study
        table = ReliabilityTable.from_statistics(stats)
        assert table.weight_for_group(TopKGroup.TOP_1) == pytest.approx(0.8)
        assert table.weight_for_group(TopKGroup.TOP_2) == pytest.approx(0.4)
        assert table.weight_for_group(TopKGroup.NONE) == 0.0

    def test_prior_is_share_weighted_mean(self, study):
        _, stats = study
        table = ReliabilityTable.from_statistics(stats)
        assert table.prior == pytest.approx((0.8 + 0.4 + 0.0) / 3)

    def test_as_dict_reporting_order(self, study):
        _, stats = study
        table = ReliabilityTable.from_statistics(stats)
        keys = list(table.as_dict())
        assert keys[0] == "Top-1"
        assert keys[-2] == "None"
        assert keys[-1] == "prior"


class TestSchemes:
    def test_uniform_always_one(self, study):
        groupings, stats = study
        table = ReliabilityTable.from_statistics(stats)
        for grouping in groupings.values():
            assert table.weight_for_user(grouping, WeightingScheme.UNIFORM) == 1.0
        assert table.weight_for_user(None, WeightingScheme.UNIFORM) == 1.0

    def test_rank_reciprocal(self, study):
        groupings, stats = study
        table = ReliabilityTable.from_statistics(stats)
        assert table.weight_for_user(groupings[1], WeightingScheme.RANK_RECIPROCAL) == 1.0
        assert table.weight_for_user(groupings[2], WeightingScheme.RANK_RECIPROCAL) == 0.5
        assert table.weight_for_user(groupings[3], WeightingScheme.RANK_RECIPROCAL) == 0.0

    def test_group_matched_share_scheme(self, study):
        groupings, stats = study
        table = ReliabilityTable.from_statistics(stats)
        assert table.weight_for_user(groupings[1]) == pytest.approx(0.8)
        assert table.weight_for_user(groupings[3]) == 0.0

    def test_unknown_user_gets_prior(self, study):
        _, stats = study
        table = ReliabilityTable.from_statistics(stats)
        assert table.weight_for_user(None) == table.prior
        assert table.weight_for_user(None, WeightingScheme.RANK_RECIPROCAL) == table.prior

    def test_weight_ordering_matches_groups(self, study):
        """Higher-ranked groups must never weigh less than lower ones."""
        _, stats = study
        table = ReliabilityTable.from_statistics(stats)
        assert (
            table.weight_for_group(TopKGroup.TOP_1)
            >= table.weight_for_group(TopKGroup.TOP_2)
            >= table.weight_for_group(TopKGroup.NONE)
        )
