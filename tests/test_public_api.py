"""Sanity tests over the public API surface."""

import importlib

import pytest

import repro


PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.columnar",
    "repro.datasets",
    "repro.engine",
    "repro.events",
    "repro.geo",
    "repro.geocode",
    "repro.geodata",
    "repro.grouping",
    "repro.live",
    "repro.pipelines",
    "repro.serving",
    "repro.storage",
    "repro.streaming",
    "repro.text",
    "repro.twitter",
    "repro.yahooapi",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    """Every name in __all__ must be importable from its package."""
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__")
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_unique(package_name):
    package = importlib.import_module(package_name)
    names = list(package.__all__)
    assert len(names) == len(set(names)), f"{package_name}.__all__ has duplicates"


def test_version():
    assert repro.__version__ == "1.0.0"


def test_error_hierarchy():
    from repro import errors

    leaf_errors = [
        errors.InvalidCoordinateError,
        errors.UnknownRegionError,
        errors.GeocodingError,
        errors.RateLimitExceededError,
        errors.ServiceUnavailableError,
        errors.MalformedResponseError,
        errors.DuplicateKeyError,
        errors.NotFoundError,
        errors.InsufficientDataError,
        errors.ConfigurationError,
    ]
    for leaf in leaf_errors:
        assert issubclass(leaf, errors.ReproError)
    assert issubclass(errors.RateLimitExceededError, errors.ApiError)
    assert issubclass(errors.DuplicateKeyError, errors.StorageError)


def test_rate_limit_error_carries_retry_after():
    from repro.errors import RateLimitExceededError

    error = RateLimitExceededError(retry_after_s=12.5)
    assert error.retry_after_s == 12.5
    assert "12.5" in str(error)
