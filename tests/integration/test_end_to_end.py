"""End-to-end integration tests with ground-truth validation.

Because the corpus is synthetic, we can check the study's conclusions
against what the generator actually did — the validation the original
paper could never perform:

* users generated RELOCATED / FIXED_ELSEWHERE must land in the None group;
* HOME_ANCHORED users overwhelmingly land in Top-1;
* the headline numbers hold at test scale.
"""

import pytest

from repro.grouping.topk import TopKGroup
from repro.twitter.models import MobilityClass


@pytest.fixture(scope="module")
def study(small_ctx):
    return small_ctx.korean_study


@pytest.fixture(scope="module")
def users(small_ctx):
    return small_ctx.korean_dataset.users


class TestGroundTruth:
    def test_relocated_users_are_none_group(self, study, users):
        for user_id, grouping in study.groupings.items():
            mobility = users.get(user_id).mobility
            if mobility in (MobilityClass.RELOCATED, MobilityClass.FIXED_ELSEWHERE):
                assert grouping.group is TopKGroup.NONE, (
                    f"user {user_id} ({mobility}) classified {grouping.group}"
                )

    def test_home_anchored_mostly_top1(self, study, users):
        anchored = [
            g
            for uid, g in study.groupings.items()
            if users.get(uid).mobility is MobilityClass.HOME_ANCHORED
        ]
        assert anchored
        top1 = sum(1 for g in anchored if g.group is TopKGroup.TOP_1)
        # Sampling noise (few GPS tweets per user) can demote some, but the
        # clear majority must rank home first.
        assert top1 / len(anchored) > 0.6

    def test_none_group_users_never_matched(self, study):
        for grouping in study.groupings.values():
            if grouping.group is TopKGroup.NONE:
                assert grouping.matched_tweets == 0

    def test_profile_district_is_ground_truth_home(self, study, users):
        """The forward geocoder must recover the generator's home district
        for every study user (their profiles are the well-defined ones)."""
        agree = sum(
            1
            for uid, district in study.profile_districts.items()
            if district.key()
            == (users.get(uid).home_state, users.get(uid).home_county)
        )
        assert agree / len(study.profile_districts) > 0.95


class TestHeadlineNumbers:
    def test_top12_share_near_half(self, study):
        share = study.statistics.user_share(TopKGroup.TOP_1, TopKGroup.TOP_2)
        assert 0.35 <= share <= 0.70

    def test_none_share_near_third(self, study):
        share = study.statistics.row(TopKGroup.NONE).user_share
        assert 0.15 <= share <= 0.50

    def test_overall_avg_locations_near_three(self, study):
        assert 1.5 <= study.statistics.overall_avg_tweet_locations <= 5.0

    def test_none_group_roams_less_than_top_groups_average(self, study):
        rows = study.statistics.rows
        none_avg = study.statistics.row(TopKGroup.NONE).avg_tweet_locations
        matched_avgs = [
            r.avg_tweet_locations for r in rows if r.group.is_matched_group and r.user_count
        ]
        assert none_avg < max(matched_avgs)


class TestCrossDataset:
    def test_both_studies_produced_users(self, small_ctx):
        assert small_ctx.korean_study.statistics.total_users > 50
        assert small_ctx.ladygaga_study.statistics.total_users > 20

    def test_streaming_users_contribute_fewer_tweets(self, small_ctx):
        korean = small_ctx.korean_study.statistics
        gaga = small_ctx.ladygaga_study.statistics
        assert (
            gaga.total_tweets / gaga.total_users
            < korean.total_tweets / korean.total_users
        )
