"""Property-based tests of the whole study pipeline.

Random (tiny) platform configurations go through dataset build +
refinement + grouping; the structural invariants must hold for every
configuration, not just the calibrated defaults.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.correlation import run_study
from repro.datasets.korean import KoreanDatasetConfig, build_korean_dataset
from repro.grouping.topk import TopKGroup
from repro.twitter.models import MobilityClass, ProfileStyle
from repro.twitter.population import (
    DEFAULT_MOBILITY_MIX,
    DEFAULT_PROFILE_STYLE_MIX,
)
from repro.twitter.tweetgen import CollectionWindow


@st.composite
def tiny_configs(draw):
    """A small random platform configuration."""
    population = draw(st.integers(min_value=40, max_value=120))
    crawl = draw(st.integers(min_value=30, max_value=population))
    days = draw(st.integers(min_value=5, max_value=20))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return KoreanDatasetConfig(
        population_size=population,
        crawl_limit=crawl,
        window=CollectionWindow(start_ms=1_314_835_200_000, days=days),
        seed=seed,
        use_api_timelines=False,
    )


class TestPipelineInvariants:
    @given(tiny_configs())
    @settings(max_examples=10, deadline=None)
    def test_structural_invariants_hold(self, config):
        dataset = build_korean_dataset(config)
        study = run_study(dataset.users, dataset.tweets, dataset.gazetteer)

        funnel = study.funnel
        # Funnel is monotone.
        assert funnel.crawled_users == config.crawl_limit
        assert funnel.well_defined_users <= funnel.crawled_users
        assert funnel.users_with_gps <= funnel.well_defined_users
        assert funnel.study_users <= funnel.users_with_gps
        assert funnel.gps_tweets <= funnel.total_tweets
        assert sum(funnel.profile_status_counts.values()) == funnel.crawled_users

        # Observations and groupings are consistent.
        assert len(study.observations) == funnel.resolved_observations
        assert set(study.groupings) == {o.user_id for o in study.observations}
        assert set(study.profile_districts) == set(study.groupings)

        if study.groupings:
            stats = study.statistics
            assert stats.total_users == funnel.study_users
            assert stats.total_tweets == len(study.observations)
            assert abs(sum(r.user_share for r in stats.rows) - 1.0) < 1e-9
            for grouping in study.groupings.values():
                assert grouping.total_tweets >= 1
                if grouping.group is TopKGroup.NONE:
                    assert grouping.matched_tweets == 0
                else:
                    assert grouping.matched_tweets >= 1

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=5, deadline=None)
    def test_mobility_ground_truth_always_respected(self, seed):
        config = KoreanDatasetConfig(
            population_size=80,
            crawl_limit=70,
            window=CollectionWindow(start_ms=1_314_835_200_000, days=10),
            seed=seed,
            use_api_timelines=False,
        )
        dataset = build_korean_dataset(config)
        study = run_study(dataset.users, dataset.tweets, dataset.gazetteer)
        for user_id, grouping in study.groupings.items():
            user = dataset.users.get(user_id)
            if user.mobility in (
                MobilityClass.RELOCATED,
                MobilityClass.FIXED_ELSEWHERE,
            ) and user.profile_style is ProfileStyle.DISTRICT:
                assert grouping.group is TopKGroup.NONE, (
                    f"seed {seed}: {user.mobility} user {user_id} "
                    f"classified {grouping.group}"
                )


def test_default_mixes_are_normalisable():
    """The documented default mixes stay valid probability weights."""
    assert abs(sum(DEFAULT_MOBILITY_MIX.values()) - 1.0) < 1e-9
    assert abs(sum(DEFAULT_PROFILE_STYLE_MIX.values()) - 1.0) < 1e-9
