"""Unit tests for the shared buffer file: write, map, decode, fail well."""

from array import array

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.columnar.records import MatchColumns
from repro.columnar.share import MAGIC, BufferReader, BufferWriter, ShardSlice
from repro.errors import StorageError
from repro.twitter.models import GeotaggedObservation


class TestShardSlice:
    def test_len_is_the_row_span(self):
        assert len(ShardSlice(3, 10)) == 7
        assert len(ShardSlice(5, 5)) == 0


class TestRoundTrip:
    def test_i64_blob_and_strings_sections(self, tmp_path):
        writer = BufferWriter()
        writer.add_i64("numbers", array("q", [-(2**62), -1, 0, 1, 2**62]))
        writer.add_blob("meta", b'{"hello": "world"}')
        writer.add_strings("names", ["Seoul", "", "서초구", "a#b"])
        path = writer.write(tmp_path / "round.buf")
        with BufferReader(path) as reader:
            assert set(reader.section_names) >= {"numbers", "meta"}
            assert list(reader.i64("numbers")) == [-(2**62), -1, 0, 1, 2**62]
            assert bytes(reader.blob("meta")) == b'{"hello": "world"}'
            table = reader.strings("names")
            assert len(table) == 4
            assert table.all() == ["Seoul", "", "서초구", "a#b"]
            assert table.lookup(2) == "서초구"

    @given(st.lists(st.text(max_size=20), max_size=30))
    def test_any_string_table_round_trips(self, tmp_path_factory, strings):
        path = tmp_path_factory.mktemp("buf") / "strings.buf"
        writer = BufferWriter()
        writer.add_strings("table", strings)
        writer.write(path)
        with BufferReader(path) as reader:
            assert reader.strings("table").all() == strings

    def test_duplicate_section_rejected(self):
        writer = BufferWriter()
        writer.add_i64("twice", array("q", [1]))
        with pytest.raises(StorageError):
            writer.add_i64("twice", array("q", [2]))

    def test_match_columns_round_trip_via_mapped(self, small_ctx, tmp_path):
        observations = small_ctx.ladygaga_study.observations
        columns = MatchColumns.from_observations(observations)
        path = tmp_path / "columns.buf"
        columns.write(path)
        with BufferReader(path) as reader:
            mapped = MatchColumns.mapped(reader)
            assert len(mapped) == len(columns)
            assert mapped.to_observations() == list(observations)
            del mapped


class TestFailureModes:
    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            BufferReader(tmp_path / "absent.buf")

    def test_wrong_magic(self, tmp_path):
        path = tmp_path / "not_a_buffer.buf"
        path.write_bytes(b"JSONJUNK" + b"\x00" * 64)
        with pytest.raises(StorageError):
            BufferReader(path)

    def test_truncated_file(self, tmp_path):
        writer = BufferWriter()
        writer.add_i64("col", array("q", range(64)))
        path = writer.write(tmp_path / "whole.buf")
        clipped = tmp_path / "clipped.buf"
        clipped.write_bytes(path.read_bytes()[: len(MAGIC) + 4])
        with pytest.raises(StorageError):
            BufferReader(clipped)

    def test_unknown_section(self, tmp_path):
        writer = BufferWriter()
        writer.add_i64("real", array("q", [1, 2]))
        path = writer.write(tmp_path / "sections.buf")
        with BufferReader(path) as reader:
            with pytest.raises(StorageError):
                reader.i64("imaginary")

    def test_string_table_rejects_out_of_range_ids(self, tmp_path):
        writer = BufferWriter()
        writer.add_strings("names", ["only"])
        path = writer.write(tmp_path / "oob.buf")
        with BufferReader(path) as reader:
            table = reader.strings("names")
            with pytest.raises(StorageError):
                table.lookup(1)
            with pytest.raises(StorageError):
                table.lookup(-1)

    def test_close_with_live_views_is_safe(self, tmp_path):
        """Closing while a decoded view is still referenced must not
        raise — the mapping is released when the last view drops."""
        writer = BufferWriter()
        writer.add_i64("col", array("q", [7, 8, 9]))
        path = writer.write(tmp_path / "live.buf")
        reader = BufferReader(path)
        view = reader.i64("col")
        reader.close()
        reader.close()
        assert list(view) == [7, 8, 9]
        del view
