"""Property tests: columnar grouping is byte-equivalent to the dict path.

Two equivalences carry the tentpole refactor:

* :func:`columnar_group_users` returns *equal* ``UserGrouping`` objects
  to the batch :func:`~repro.grouping.topk.group_users` for every
  tie-break policy and any observation multiset;
* :class:`ColumnarGrouper` is observationally identical to the streaming
  :class:`~repro.grouping.incremental.IncrementalGrouper` — same
  classifications, same ``export_counts``, same checkpoint digest.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar.grouping import (
    ColumnarGrouper,
    columnar_group_users,
    concat_packed,
    groupings_from_packed,
    merged_rows_packed,
)
from repro.columnar.records import MatchColumns
from repro.errors import InsufficientDataError
from repro.grouping.incremental import IncrementalGrouper
from repro.grouping.merge import TieBreak
from repro.grouping.topk import group_users
from repro.streaming.snapshot import state_digest
from repro.twitter.models import GeotaggedObservation

_STATES = ["Seoul", "Busan", "California"]
_COUNTIES = ["Gangnam-gu", "Jongno-gu", "서초구", "Los Angeles"]


@st.composite
def observation_sets(draw):
    """Observation lists with per-user fixed profile districts."""
    user_count = draw(st.integers(min_value=1, max_value=5))
    profiles = {
        user_id: (
            draw(st.sampled_from(_STATES)),
            draw(st.sampled_from(_COUNTIES)),
        )
        for user_id in range(1, user_count + 1)
    }
    rows = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=user_count),
                st.sampled_from(_STATES),
                st.sampled_from(_COUNTIES),
            ),
            min_size=1,
            max_size=50,
        )
    )
    return [
        GeotaggedObservation(
            user_id=user_id,
            profile_state=profiles[user_id][0],
            profile_county=profiles[user_id][1],
            tweet_state=tweet_state,
            tweet_county=tweet_county,
        )
        for user_id, tweet_state, tweet_county in rows
    ]


class TestBatchEquivalence:
    @given(observation_sets(), st.sampled_from(TieBreak))
    @settings(max_examples=60)
    def test_equals_dict_path_under_every_tie_break(self, observations, tie_break):
        reference = group_users(observations, tie_break=tie_break)
        columns = MatchColumns.from_observations(observations)
        assert columnar_group_users(columns, tie_break=tie_break) == reference

    @given(observation_sets())
    def test_user_output_order_matches_first_encounter(self, observations):
        reference = group_users(observations)
        columns = MatchColumns.from_observations(observations)
        result = columnar_group_users(columns)
        assert list(result) == list(reference)

    @pytest.mark.parametrize("dataset", ["korean", "ladygaga"])
    def test_equals_dict_path_on_real_datasets(self, small_ctx, dataset):
        observations = getattr(small_ctx, f"{dataset}_study").observations
        reference = group_users(observations)
        columns = MatchColumns.from_observations(observations)
        assert columnar_group_users(columns) == reference


class TestShardedMerge:
    @given(observation_sets(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=40)
    def test_slice_merge_equals_whole_range(self, observations, pieces):
        """Packing user-aligned slices and concatenating equals packing
        the whole table — the associativity the shard protocol needs."""
        observations.sort(key=lambda o: o.user_id)
        columns = MatchColumns.from_observations(observations)
        whole = merged_rows_packed(columns)

        slices = columns.user_slices()
        bounds = sorted({0, len(columns)} | {
            slices[(i * len(slices)) // pieces][1]
            for i in range(1, pieces)
            if slices
        })
        parts = [
            merged_rows_packed(columns, start, stop)
            for start, stop in zip(bounds, bounds[1:])
        ]
        merged = concat_packed(parts)
        assert {name: list(column) for name, column in merged.items()} == {
            name: list(column) for name, column in whole.items()
        }

    @given(observation_sets())
    def test_trusting_stored_order_preserves_it(self, observations):
        """``tie_break=None`` materialises rows exactly as stored — the
        contract the columnar study loader depends on."""
        columns = MatchColumns.from_observations(observations)
        packed = merged_rows_packed(columns)
        lookup = columns.interner.lookup
        trusted = groupings_from_packed(packed, lookup, tie_break=None)
        position = 0
        for user_id, row_count in zip(
            packed["user_ids"], packed["rows_per_user"]
        ):
            for offset in range(row_count):
                index = position + offset
                record = trusted[user_id].merged[offset].record
                assert record.profile_state == lookup(
                    packed["profile_states"][index]
                )
                assert record.tweet_county == lookup(
                    packed["tweet_counties"][index]
                )
            position += row_count


class TestColumnarGrouper:
    def test_unseen_user(self):
        grouper = ColumnarGrouper()
        assert grouper.group_of(1) is None
        with pytest.raises(InsufficientDataError):
            grouper.classify(1)

    @given(observation_sets(), st.sampled_from(TieBreak))
    @settings(max_examples=40)
    def test_matches_incremental_grouper(self, observations, tie_break):
        columnar = ColumnarGrouper(tie_break)
        incremental = IncrementalGrouper(tie_break)
        columnar.add_many(observations)
        incremental.add_many(observations)
        assert columnar.user_ids == incremental.user_ids
        assert columnar.export_counts() == incremental.export_counts()
        assert columnar.classify_all() == incremental.classify_all()
        for user_id in columnar.user_ids:
            assert columnar.observation_count(
                user_id
            ) == incremental.observation_count(user_id)
            assert columnar.group_of(user_id) == incremental.group_of(user_id)

    @given(observation_sets(), st.integers(min_value=1, max_value=7))
    @settings(max_examples=40)
    def test_digest_independent_of_batching(self, observations, chunk):
        """Checkpoint digests cannot tell fold batching — or grouper
        implementation — apart."""
        whole = ColumnarGrouper()
        whole.add_many(observations)
        chunked = ColumnarGrouper()
        for start in range(0, len(observations), chunk):
            chunked.add_many(observations[start : start + chunk])
        reference = IncrementalGrouper()
        reference.add_many(observations)
        assert state_digest(whole) == state_digest(chunked)
        assert state_digest(whole) == state_digest(reference)

    @given(observation_sets())
    def test_matches_batch_grouping(self, observations):
        grouper = ColumnarGrouper()
        grouper.add_many(observations)
        reference = group_users(observations)
        classified = grouper.classify_all()
        assert set(classified) == set(reference)
        for user_id, grouping in reference.items():
            assert classified[user_id] == grouping
