"""Tests for the columnar raw-speed core."""
