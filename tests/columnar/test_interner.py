"""Unit and property tests for the string interner.

The load-bearing claims: ids are dense first-encounter order, arbitrary
strings round-trip (Korean district names, empty strings, strings
containing the ``#`` delimiter), and a :meth:`to_lines` /
:meth:`from_lines` round trip preserves every id exactly — including
over both datasets' real location strings.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.columnar.interner import StringInterner, study_interner
from repro.errors import ConfigurationError


class TestBasics:
    def test_dense_first_encounter_ids(self):
        interner = StringInterner()
        assert interner.intern("Seoul") == 0
        assert interner.intern("Gangnam-gu") == 1
        assert interner.intern("Seoul") == 0
        assert len(interner) == 2
        assert interner.strings == ("Seoul", "Gangnam-gu")

    def test_lookup_inverts_intern(self):
        interner = StringInterner()
        for text in ("California", "서울특별시", "", "a#b"):
            assert interner.lookup(interner.intern(text)) == text

    def test_id_of_known_and_unknown(self):
        interner = StringInterner()
        interner.intern("Texas")
        assert interner.id_of("Texas") == 0
        with pytest.raises(KeyError):
            interner.id_of("Atlantis")

    def test_lookup_out_of_range(self):
        interner = StringInterner()
        interner.intern("one")
        with pytest.raises(ConfigurationError):
            interner.lookup(1)
        with pytest.raises(ConfigurationError):
            interner.lookup(-1)

    def test_contains(self):
        interner = StringInterner()
        interner.intern("Busan")
        assert "Busan" in interner
        assert "Seoul" not in interner

    def test_intern_many_returns_ids_in_order(self):
        interner = StringInterner()
        assert interner.intern_many(["a", "b", "a", "c"]) == [0, 1, 0, 2]

    def test_from_lines_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            StringInterner.from_lines(["x", "y", "x"])


class TestEdgeCaseStrings:
    """The interner works on whole components, never delimited records,
    so strings the grouping layer would reject must still round-trip."""

    @pytest.mark.parametrize(
        "text",
        ["", "#", "uid#state#county", "강남구", "  spaced  ", "\t", "a" * 1000],
    )
    def test_round_trips(self, text):
        interner = StringInterner()
        assigned = interner.intern(text)
        assert interner.lookup(assigned) == text
        rebuilt = StringInterner.from_lines(interner.to_lines())
        assert rebuilt == interner
        assert rebuilt.id_of(text) == assigned


class TestProperties:
    @given(st.lists(st.text(max_size=30)))
    def test_ids_stable_across_save_load(self, texts):
        interner = StringInterner()
        ids = interner.intern_many(texts)
        rebuilt = StringInterner.from_lines(interner.to_lines())
        assert rebuilt == interner
        assert rebuilt.intern_many(texts) == ids
        assert rebuilt.digest() == interner.digest()

    @given(st.lists(st.text(max_size=30)))
    def test_lookup_inverts_every_id(self, texts):
        interner = StringInterner()
        for text in texts:
            assert interner.lookup(interner.intern(text)) == text

    @given(st.lists(st.text(max_size=20), unique=True, min_size=1))
    def test_digest_is_order_sensitive(self, texts):
        forward = StringInterner()
        forward.intern_many(texts)
        backward = StringInterner()
        backward.intern_many(list(reversed(texts)))
        if len(texts) > 1:
            assert forward.digest() != backward.digest()
        else:
            assert forward.digest() == backward.digest()


class TestStudyInterner:
    @pytest.mark.parametrize("dataset", ["korean", "ladygaga"])
    def test_round_trips_every_real_location_string(self, small_ctx, dataset):
        """Every location string of both real datasets — Korean district
        names included — survives intern -> save -> load unchanged."""
        study = getattr(small_ctx, f"{dataset}_study")
        interner = study_interner(study.observations, study.profile_districts)
        rebuilt = StringInterner.from_lines(interner.to_lines())
        assert rebuilt == interner
        for observation in study.observations:
            for text in (
                observation.profile_state,
                observation.profile_county,
                observation.tweet_state,
                observation.tweet_county,
            ):
                assert rebuilt.lookup(rebuilt.id_of(text)) == text

    def test_canonical_sweep_is_deterministic(self, small_ctx):
        study = small_ctx.korean_study
        one = study_interner(study.observations, study.profile_districts)
        two = study_interner(study.observations, study.profile_districts)
        assert one == two
        assert one.digest() == two.digest()

    def test_district_strings_are_swept_after_observations(self, small_ctx):
        study = small_ctx.korean_study
        without = study_interner(study.observations)
        with_districts = study_interner(study.observations, study.profile_districts)
        assert with_districts.strings[: len(without)] == without.strings
