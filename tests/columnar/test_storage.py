"""Round-trip tests for the columnar study artifact (.cstudy).

The artifact's contract is byte-identity through the JSON lens: a study
saved columnar and loaded back must produce the exact
``study_to_json`` document — same digest, same serving version — as the
original, on both datasets.
"""

import pytest

from repro.analysis.serialization import save_study, study_digest, study_to_json
from repro.columnar.storage import (
    is_columnar_study,
    load_study_columnar,
    save_study_columnar,
)
from repro.errors import StorageError


class TestRoundTrip:
    @pytest.mark.parametrize("dataset", ["korean", "ladygaga"])
    def test_byte_identical_through_json_lens(self, small_ctx, tmp_path, dataset):
        study = getattr(small_ctx, f"{dataset}_study")
        gazetteer = getattr(small_ctx, f"{dataset}_dataset").gazetteer
        path = tmp_path / f"{dataset}.cstudy"
        save_study_columnar(study, path)
        loaded = load_study_columnar(path, gazetteer)
        assert study_to_json(loaded) == study_to_json(study)
        assert study_digest(loaded) == study_digest(study)

    def test_statistics_recomputed_identically(self, small_ctx, tmp_path):
        study = small_ctx.korean_study
        path = tmp_path / "korean.cstudy"
        save_study_columnar(study, path)
        loaded = load_study_columnar(path, small_ctx.korean_dataset.gazetteer)
        assert loaded.statistics == study.statistics
        assert loaded.funnel.as_dict() == study.funnel.as_dict()
        assert loaded.api_stats.snapshot() == study.api_stats.snapshot()


class TestFormatDetection:
    def test_detects_columnar_artifact(self, small_ctx, tmp_path):
        path = tmp_path / "study.cstudy"
        save_study_columnar(small_ctx.korean_study, path)
        assert is_columnar_study(path)

    def test_rejects_json_artifact(self, small_ctx, tmp_path):
        path = tmp_path / "study.json"
        save_study(small_ctx.korean_study, path)
        assert not is_columnar_study(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(StorageError):
            is_columnar_study(tmp_path / "absent.cstudy")

    def test_loading_json_as_columnar_raises(self, small_ctx, tmp_path):
        path = tmp_path / "study.json"
        save_study(small_ctx.korean_study, path)
        with pytest.raises(StorageError):
            load_study_columnar(path, small_ctx.korean_dataset.gazetteer)
