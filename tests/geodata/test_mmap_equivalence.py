"""Property suite: the mmap backend answers every query like the in-memory one.

Mirrors the PR 3 in-memory suite in ``tests/geo/test_gazetteer.py`` —
grid-accelerated ``nearest()`` against brute force, antimeridian
wraparound, grid-boundary points — but runs the queries over
:class:`~repro.geodata.mmapgaz.MmapGazetteer`, and additionally pins the
two backends to each other district-for-district (ties included).
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, UnknownRegionError
from repro.geo.gazetteer import Gazetteer, GazetteerBackend
from repro.geo.point import GeoPoint
from repro.geo.region import District, DistrictKind
from repro.geodata.artifact import write_gazetteer_artifact
from repro.geodata.mmapgaz import MmapGazetteer
from repro.geodata.registry import dataset_gazetteer, gazetteer_backend_kind


def _district(name, state, lat, lon):
    return District(
        name=name,
        state=state,
        country="South Korea",
        kind=DistrictKind.CITY,
        center=GeoPoint(lat, lon),
        radius_km=5.0,
        aliases=(name.lower(),),
    )


class TestProtocol:
    def test_both_backends_satisfy_protocol(self, korean_mmap, korean_gazetteer):
        assert isinstance(korean_mmap, GazetteerBackend)
        assert isinstance(korean_gazetteer, GazetteerBackend)


class TestCatalogueEquivalence:
    @pytest.mark.parametrize("catalogue", ["korean", "world", "combined"])
    def test_districts_identical(self, catalogue, artifact_dir, request):
        memory = request.getfixturevalue(f"{catalogue}_gazetteer")
        mapped = request.getfixturevalue(f"{catalogue}_mmap")
        assert mapped.districts == memory.districts
        assert len(mapped) == len(memory)
        assert list(mapped) == list(memory.districts)

    def test_states_and_members(self, korean_mmap, korean_gazetteer):
        assert korean_mmap.states == korean_gazetteer.states
        for state in korean_gazetteer.states:
            assert korean_mmap.in_state(state) == korean_gazetteer.in_state(state)
        with pytest.raises(UnknownRegionError):
            korean_mmap.in_state("Atlantis")

    def test_exact_lookup(self, combined_mmap, combined_gazetteer):
        for district in combined_gazetteer.districts:
            assert combined_mmap.get(district.state, district.name) == district
        assert combined_mmap.find("Seoul", "Nonexistent-gu") is None
        with pytest.raises(UnknownRegionError):
            combined_mmap.get("Seoul", "Nonexistent-gu")

    def test_alias_lookup(self, combined_mmap, combined_gazetteer):
        for district in combined_gazetteer.districts:
            for alias in district.aliases:
                for probe in (alias, alias.upper(), f"  {alias} "):
                    assert combined_mmap.lookup_alias(probe) == (
                        combined_gazetteer.lookup_alias(probe)
                    )
        assert combined_mmap.lookup_alias("no such place") == ()

    def test_alias_casefold_non_ascii(self, tmp_path):
        """The packed alias index folds exactly like the in-memory one."""
        district = District(
            name="Altstadt",
            state="Hessen",
            country="Germany",
            kind=DistrictKind.WORLD_CITY,
            center=GeoPoint(50.11, 8.68),
            radius_km=5.0,
            aliases=("Große Straße",),
        )
        path = write_gazetteer_artifact(
            tmp_path / "de.rgaz", [district], grid_deg=0.5
        )
        gazetteer = MmapGazetteer(path)
        assert gazetteer.lookup_alias("GROSSE STRASSE") == (district,)
        assert gazetteer.lookup_alias("grosse strasse") == (district,)


class TestSpatialEquivalence:
    @given(
        st.floats(min_value=33.2, max_value=38.2),
        st.floats(min_value=126.2, max_value=129.5),
    )
    @settings(max_examples=80, deadline=None)
    def test_nearest_matches_brute_force(self, korean_mmap, lat, lon):
        """Packed-grid nearest == brute force over the mmap columns."""
        point = GeoPoint(lat, lon)
        fast = korean_mmap.nearest(point)
        brute = min(
            korean_mmap.districts, key=lambda d: d.center.distance_km(point)
        )
        assert fast.center.distance_km(point) == pytest.approx(
            brute.center.distance_km(point), abs=1e-9
        )

    @given(
        st.floats(min_value=-90.0, max_value=90.0),
        st.one_of(
            st.floats(min_value=-180.0, max_value=180.0),
            # Hug the antimeridian from both sides.
            st.floats(min_value=179.0, max_value=180.0),
            st.floats(min_value=-180.0, max_value=-179.0),
        ),
        st.sampled_from([None, 0.5, 1.0, 2.0]),
    )
    @settings(max_examples=120, deadline=None)
    def test_nearest_matches_brute_force_globally(
        self, world_mmap, world_gazetteer, lat, lon, snap_deg
    ):
        """Property: mmap nearest == brute force == in-memory nearest for
        arbitrary points, points snapped onto grid-cell boundaries, and
        points across the antimeridian."""
        if snap_deg is not None:
            lat = max(-90.0, min(90.0, round(lat / snap_deg) * snap_deg))
            lon = max(-180.0, min(180.0, round(lon / snap_deg) * snap_deg))
        point = GeoPoint(lat, lon)
        fast = world_mmap.nearest(point)
        brute = min(
            world_mmap.districts, key=lambda d: d.center.distance_km(point)
        )
        assert fast.center.distance_km(point) == pytest.approx(
            brute.center.distance_km(point), abs=1e-9
        )
        # Bit-identical to the in-memory backend, tie-breaks included.
        assert fast == world_gazetteer.nearest(point)

    @given(
        st.floats(min_value=33.2, max_value=38.2),
        st.floats(min_value=126.2, max_value=129.5),
        st.floats(min_value=0.0, max_value=120.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_within_matches_memory(
        self, korean_mmap, korean_gazetteer, lat, lon, radius
    ):
        point = GeoPoint(lat, lon)
        assert korean_mmap.within(point, radius) == korean_gazetteer.within(
            point, radius
        )

    def test_nearest_across_antimeridian(self, tmp_path):
        west = _district("West-si", "W-do", 10.0, 179.8)
        far = _district("Far-si", "F-do", 10.0, 170.0)
        path = write_gazetteer_artifact(
            tmp_path / "anti.rgaz", [west, far], grid_deg=0.5
        )
        gazetteer = MmapGazetteer(path)
        assert gazetteer.nearest(GeoPoint(10.0, -179.9)).name == "West-si"
        hits = gazetteer.within(GeoPoint(10.0, -179.9), radius_km=50.0)
        assert [d.name for d in hits] == ["West-si"]

    def test_nearest_within_cutoff(self, korean_mmap):
        sea = GeoPoint(37.5, 131.5)
        assert korean_mmap.nearest_within(sea, max_km=10.0) is None
        assert korean_mmap.nearest_within(sea, max_km=500.0) is not None


class TestRegistry:
    def test_memory_kind(self, monkeypatch):
        monkeypatch.setenv("REPRO_GAZETTEER", "memory")
        assert gazetteer_backend_kind() == "memory"
        assert isinstance(dataset_gazetteer("korean"), Gazetteer)

    def test_mmap_default_and_cached(self, monkeypatch):
        monkeypatch.delenv("REPRO_GAZETTEER", raising=False)
        assert gazetteer_backend_kind() == "mmap"
        first = dataset_gazetteer("korean")
        assert isinstance(first, MmapGazetteer)
        assert dataset_gazetteer("korean") is first

    def test_invalid_kind_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_GAZETTEER", "turbo")
        with pytest.raises(ConfigurationError):
            gazetteer_backend_kind()

    def test_pickles_as_path(self, korean_mmap, korean_gazetteer):
        """Worker payloads carry a path, not the catalogue object graph."""
        payload = pickle.dumps(korean_mmap)
        graph = pickle.dumps(korean_gazetteer)
        assert len(payload) < 1024
        assert len(payload) < len(graph) // 10
        clone = pickle.loads(payload)
        try:
            assert clone.districts == korean_mmap.districts
            assert clone.path == korean_mmap.path
        finally:
            clone.close()
