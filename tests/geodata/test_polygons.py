"""Point-in-polygon resolution: geometry, resolver precedence, agreement.

Covers the :class:`~repro.geo.polygon.BoundaryPolygon` primitive, the
polygon-first :class:`~repro.geo.reverse.ReverseGeocoder` path (including
the boundary-straddling fixture where nearest-centroid used to
mis-assign), and the guarantee that on both seed catalogues — which ship
no polygons — results are unchanged.
"""

import pytest

from repro.errors import GeocodingError, InvalidCoordinateError
from repro.geo.gazetteer import Gazetteer
from repro.geo.point import GeoPoint
from repro.geo.polygon import BoundaryPolygon
from repro.geo.region import District, DistrictKind
from repro.geo.reverse import ReverseGeocoder
from repro.geodata.artifact import write_gazetteer_artifact
from repro.geodata.mmapgaz import MmapGazetteer


def _district(name, state, lat, lon, radius_km=5.0):
    return District(
        name=name,
        state=state,
        country="South Korea",
        kind=DistrictKind.CITY,
        center=GeoPoint(lat, lon),
        radius_km=radius_km,
        aliases=(),
    )


SQUARE = BoundaryPolygon([[(36.0, 126.0), (38.0, 126.0), (38.0, 128.0), (36.0, 128.0)]])


class TestBoundaryPolygon:
    def test_contains_inside_and_outside(self):
        assert SQUARE.contains(GeoPoint(37.0, 127.0))
        assert not SQUARE.contains(GeoPoint(35.0, 127.0))
        assert not SQUARE.contains(GeoPoint(37.0, 129.0))

    def test_bbox_fast_reject(self):
        assert SQUARE.bbox.south == 36.0
        assert SQUARE.bbox.east == 128.0
        assert not SQUARE.contains(GeoPoint(80.0, 127.0))

    def test_hole_punches_out(self):
        holed = BoundaryPolygon(
            [
                [(36.0, 126.0), (38.0, 126.0), (38.0, 128.0), (36.0, 128.0)],
                [(36.8, 126.8), (37.2, 126.8), (37.2, 127.2), (36.8, 127.2)],
            ]
        )
        assert holed.contains(GeoPoint(36.2, 126.2))  # in outer, not in hole
        assert not holed.contains(GeoPoint(37.0, 127.0))  # inside the hole

    def test_concave_ring(self):
        # A "C" shape: the notch on the east side is outside.
        concave = BoundaryPolygon(
            [
                [
                    (0.0, 0.0),
                    (4.0, 0.0),
                    (4.0, 4.0),
                    (0.0, 4.0),
                    (0.0, 3.0),
                    (3.0, 3.0),
                    (3.0, 1.0),
                    (0.0, 1.0),
                ]
            ]
        )
        assert concave.contains(GeoPoint(3.5, 2.0))  # in the spine
        assert not concave.contains(GeoPoint(1.5, 2.0))  # in the notch

    def test_validation(self):
        with pytest.raises(InvalidCoordinateError):
            BoundaryPolygon([])
        with pytest.raises(InvalidCoordinateError):
            BoundaryPolygon([[(0.0, 0.0), (1.0, 1.0)]])
        with pytest.raises(InvalidCoordinateError):
            BoundaryPolygon([[(95.0, 0.0), (1.0, 1.0), (2.0, 2.0)]])

    def test_equality_and_hash(self):
        twin = BoundaryPolygon(
            [[(36.0, 126.0), (38.0, 126.0), (38.0, 128.0), (36.0, 128.0)]]
        )
        assert twin == SQUARE
        assert hash(twin) == hash(SQUARE)
        assert twin != BoundaryPolygon([[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0)]])


class TestBoundaryStraddling:
    """The fixture the tentpole demands: a point inside district A's
    surveyed boundary but *nearer district B's centroid*.  Nearest-centroid
    mis-assigns it to B; point-in-polygon correctly returns A."""

    #: A-si: big district, centroid far west inside a wide polygon.
    A = _district("A-si", "X-do", 37.0, 126.5, radius_km=60.0)
    #: B-si: small district just east of A's boundary.
    B = _district("B-si", "X-do", 37.0, 128.1, radius_km=5.0)
    #: A's boundary spans lon 125.5..128.0.
    A_POLY = BoundaryPolygon(
        [[(36.0, 125.5), (38.0, 125.5), (38.0, 128.0), (36.0, 128.0)]]
    )
    #: Inside A's polygon, ~18 km from B's centroid but ~124 km from A's.
    PROBE = GeoPoint(37.0, 127.9)

    def _backends(self, tmp_path):
        polygons = [(("X-do", "A-si"), self.A_POLY)]
        memory = Gazetteer([self.A, self.B], grid_deg=0.5, polygons=polygons)
        path = write_gazetteer_artifact(
            tmp_path / "straddle.rgaz",
            [self.A, self.B],
            grid_deg=0.5,
            polygons=polygons,
        )
        return memory, MmapGazetteer(path)

    def test_centroid_path_misassigns(self):
        """Without polygons the probe snaps to B — the documented failure."""
        bare = Gazetteer([self.A, self.B], grid_deg=0.5)
        result = ReverseGeocoder(bare).resolve(self.PROBE)
        assert result.district.name == "B-si"
        assert not result.via_polygon

    @pytest.mark.parametrize("backend", ["memory", "mmap"])
    def test_polygon_resolves_correctly(self, tmp_path, backend):
        memory, mapped = self._backends(tmp_path)
        gazetteer = memory if backend == "memory" else mapped
        result = ReverseGeocoder(gazetteer).resolve(self.PROBE)
        assert result.district.name == "A-si"
        assert result.via_polygon
        assert result.quality == 87

    def test_polygon_hit_exempt_from_max_distance(self, tmp_path):
        memory, _ = self._backends(tmp_path)
        # The probe is ~124 km from A's centroid; a 50 km cutoff would
        # reject the centroid path, but the polygon hit stands.
        result = ReverseGeocoder(memory, max_distance_km=50.0).resolve(self.PROBE)
        assert result.district.name == "A-si"
        assert result.via_polygon

    def test_outside_all_polygons_falls_back(self, tmp_path):
        memory, mapped = self._backends(tmp_path)
        east = GeoPoint(37.0, 128.4)  # outside A's boundary, nearest B
        for gazetteer in (memory, mapped):
            result = ReverseGeocoder(gazetteer).resolve(east)
            assert result.district.name == "B-si"
            assert not result.via_polygon

    def test_far_outside_still_raises(self, tmp_path):
        memory, _ = self._backends(tmp_path)
        with pytest.raises(GeocodingError):
            ReverseGeocoder(memory, max_distance_km=50.0).resolve(
                GeoPoint(10.0, 60.0)
            )

    def test_overlap_prefers_lowest_catalogue_index(self, tmp_path):
        """Overlapping claims break ties by catalogue order, on both backends."""
        b_poly = BoundaryPolygon(
            [[(36.5, 127.5), (37.5, 127.5), (37.5, 128.5), (36.5, 128.5)]]
        )
        polygons = [(("X-do", "A-si"), self.A_POLY), (("X-do", "B-si"), b_poly)]
        memory = Gazetteer([self.A, self.B], grid_deg=0.5, polygons=polygons)
        path = write_gazetteer_artifact(
            tmp_path / "overlap.rgaz",
            [self.A, self.B],
            grid_deg=0.5,
            polygons=polygons,
        )
        mapped = MmapGazetteer(path)
        for gazetteer in (memory, mapped):
            assert gazetteer.polygon_locate(self.PROBE).name == "A-si"


class TestSeedAgreement:
    """Both seed catalogues ship no polygons, so polygon-first resolution
    must agree with the pure centroid path everywhere — the byte-identity
    precondition for the study pipelines."""

    @pytest.mark.parametrize("catalogue", ["korean", "combined"])
    def test_polygon_and_centroid_paths_agree(self, catalogue, request):
        gazetteer = request.getfixturevalue(f"{catalogue}_gazetteer")
        mapped = request.getfixturevalue(f"{catalogue}_mmap")
        assert gazetteer.polygons == ()
        assert mapped._polygon_count() == 0
        geocoder = ReverseGeocoder(gazetteer)
        mapped_geocoder = ReverseGeocoder(mapped)
        probes = [d.center for d in gazetteer.districts[::7]]
        probes += [
            GeoPoint(d.center.lat + 0.01, d.center.lon - 0.01)
            for d in gazetteer.districts[::11]
        ]
        for point in probes:
            assert gazetteer.polygon_locate(point) is None
            result = geocoder.resolve(point)
            assert not result.via_polygon
            assert mapped_geocoder.resolve(point) == result
