"""Shared geodata fixtures: prepared artifacts for the builtin catalogues."""

from __future__ import annotations

import pytest

from repro.geodata.mmapgaz import MmapGazetteer
from repro.geodata.prepare import prepare_artifact


@pytest.fixture(scope="session")
def artifact_dir(tmp_path_factory):
    """One artifact per builtin catalogue, compiled once per session."""
    directory = tmp_path_factory.mktemp("rgaz")
    for catalogue in ("korean", "world", "combined"):
        prepare_artifact(directory / f"{catalogue}.rgaz", catalogue=catalogue)
    return directory


@pytest.fixture(scope="session")
def korean_mmap(artifact_dir) -> MmapGazetteer:
    return MmapGazetteer(artifact_dir / "korean.rgaz")


@pytest.fixture(scope="session")
def world_mmap(artifact_dir) -> MmapGazetteer:
    return MmapGazetteer(artifact_dir / "world.rgaz")


@pytest.fixture(scope="session")
def combined_mmap(artifact_dir) -> MmapGazetteer:
    return MmapGazetteer(artifact_dir / "combined.rgaz")
