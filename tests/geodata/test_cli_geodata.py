"""CLI contract for ``repro geodata prepare`` / ``repro geodata info``.

Unusable input or artifact state follows the ``stream --resume``
convention: exit code 3, one actionable line on stderr, no traceback.
"""

import json

import pytest

from repro.cli import build_parser, main
from repro.geodata.artifact import GAZETTEER_FORMAT_VERSION


def _err_lines(capsys):
    err = capsys.readouterr().err
    assert "Traceback" not in err
    return [line for line in err.splitlines() if line.strip()]


class TestParser:
    def test_geodata_requires_subcommand(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["geodata"])
        assert excinfo.value.code == 2

    def test_prepare_requires_out(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["geodata", "prepare"])
        assert excinfo.value.code == 2

    def test_prepare_defaults(self):
        args = build_parser().parse_args(
            ["geodata", "prepare", "--out", "x.rgaz", "--catalogue", "korean"]
        )
        assert args.catalogue == "korean"
        assert not args.districts
        assert not args.polygons
        assert args.grid_deg is None

    def test_unknown_catalogue_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["geodata", "prepare", "--out", "x.rgaz", "--catalogue", "mars"]
            )
        assert excinfo.value.code == 2


class TestPrepare:
    def test_builtin_catalogue_happy_path(self, capsys, tmp_path):
        out = tmp_path / "korean.rgaz"
        code = main(
            ["geodata", "prepare", "--out", str(out), "--catalogue", "korean"]
        )
        assert code == 0
        assert out.exists()
        stdout = capsys.readouterr().out
        assert f"wrote {out}:" in stdout
        assert "districts" in stdout
        assert "source builtin:korean" in stdout

    def test_custom_districts_jsonl(self, capsys, tmp_path):
        rows = tmp_path / "districts.jsonl"
        rows.write_text(
            json.dumps(
                {
                    "name": "A-si",
                    "state": "X-do",
                    "country": "South Korea",
                    "kind": "city",
                    "lat": 37.0,
                    "lon": 127.0,
                    "radius_km": 5.0,
                    "aliases": ["a"],
                }
            )
            + "\n",
            encoding="utf-8",
        )
        out = tmp_path / "custom.rgaz"
        code = main(
            ["geodata", "prepare", "--out", str(out), "--districts", str(rows),
             "--grid-deg", "0.5"]
        )
        assert code == 0
        assert "1 districts" in capsys.readouterr().out

    def test_missing_input_exits_3_one_line(self, capsys, tmp_path):
        code = main(
            ["geodata", "prepare", "--out", str(tmp_path / "x.rgaz"),
             "--districts", str(tmp_path / "absent.jsonl")]
        )
        assert code == 3
        lines = _err_lines(capsys)
        assert len(lines) == 1
        assert "geodata prepare failed" in lines[0]

    def test_no_source_exits_3_one_line(self, capsys, tmp_path):
        code = main(["geodata", "prepare", "--out", str(tmp_path / "x.rgaz")])
        assert code == 3
        lines = _err_lines(capsys)
        assert len(lines) == 1


class TestInfo:
    def test_info_prints_version_counts_sections(self, capsys, artifact_dir):
        code = main(["geodata", "info", str(artifact_dir / "korean.rgaz")])
        assert code == 0
        stdout = capsys.readouterr().out
        assert f"RGAZ1 v{GAZETTEER_FORMAT_VERSION}" in stdout
        assert "source builtin:korean" in stdout
        assert "districts:" in stdout
        assert "grid: 0.5deg" in stdout
        assert "polygons: 0" in stdout
        assert "sections:" in stdout
        assert "grid.keys" in stdout

    def test_missing_artifact_exits_3_one_line(self, capsys, tmp_path):
        code = main(["geodata", "info", str(tmp_path / "absent.rgaz")])
        assert code == 3
        lines = _err_lines(capsys)
        assert len(lines) == 1
        assert "cannot read gazetteer artifact" in lines[0]

    def test_corrupt_artifact_exits_3_one_line(self, capsys, tmp_path):
        bad = tmp_path / "bad.rgaz"
        bad.write_bytes(b"garbage bytes, not an artifact")
        code = main(["geodata", "info", str(bad)])
        assert code == 3
        lines = _err_lines(capsys)
        assert len(lines) == 1

    def test_version_mismatch_exits_3_one_line(self, capsys, tmp_path):
        from repro.columnar.share import BufferWriter

        writer = BufferWriter()
        writer.add_blob(
            "meta",
            json.dumps(
                {"format": "RGAZ1", "version": GAZETTEER_FORMAT_VERSION + 1}
            ).encode(),
        )
        path = writer.write(tmp_path / "future.rgaz")
        code = main(["geodata", "info", str(path)])
        assert code == 3
        lines = _err_lines(capsys)
        assert len(lines) == 1
        assert "version" in lines[0]
