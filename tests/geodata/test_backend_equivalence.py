"""Acceptance: both seed studies are byte-identical under the mmap backend.

The tentpole contract — ``REPRO_GAZETTEER=mmap`` (the default) must
produce the same ``study_to_json`` document as ``REPRO_GAZETTEER=memory``
(the escape hatch) for both seed datasets, across every execution mode:
serial, process-sharded ({2, 4} shards), a crash-resumed stream, and a
serving hot-swap from a memory-built snapshot to an mmap-built one.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.analysis.correlation import StudyResult, run_study
from repro.analysis.incremental import IncrementalStudyAccumulator
from repro.analysis.serialization import study_to_json
from repro.datasets.korean import KoreanDatasetConfig, build_korean_dataset
from repro.datasets.ladygaga import LadyGagaDatasetConfig, build_ladygaga_dataset
from repro.engine.context import RunContext
from repro.engine.engine import EngineConfig
from repro.geo.gazetteer import Gazetteer
from repro.geodata.mmapgaz import MmapGazetteer
from repro.serving import ServingSnapshot, SnapshotStore
from repro.serving.handlers import handle_regions, handle_stats
from repro.streaming import (
    BackpressurePolicy,
    BoundedTweetQueue,
    CheckpointLog,
    FirehoseSource,
    StreamConfig,
    StreamConsumer,
    StreamPump,
)
from repro.twitter.tweetgen import CollectionWindow

_WINDOW = CollectionWindow(start_ms=1_314_835_200_000, days=30)
_KOREAN = KoreanDatasetConfig(
    population_size=500, crawl_limit=420, window=_WINDOW, use_api_timelines=False
)
_LADYGAGA = LadyGagaDatasetConfig(population_size=500, window=_WINDOW)


@dataclass(frozen=True)
class _Corpus:
    """One dataset pair built under one gazetteer backend."""

    korean: object
    ladygaga: object


def _build(kind: str) -> _Corpus:
    patch = pytest.MonkeyPatch()
    patch.setenv("REPRO_GAZETTEER", kind)
    try:
        return _Corpus(
            korean=build_korean_dataset(_KOREAN),
            ladygaga=build_ladygaga_dataset(_LADYGAGA),
        )
    finally:
        patch.undo()


@pytest.fixture(scope="module")
def corpora() -> dict[str, _Corpus]:
    """The same seed configs built under each backend kind."""
    return {"memory": _build("memory"), "mmap": _build("mmap")}


def _datasets(corpus: _Corpus):
    return (("korean", corpus.korean), ("ladygaga", corpus.ladygaga))


def _study(dataset, name: str, engine_config: EngineConfig | None = None) -> StudyResult:
    return run_study(
        dataset.users,
        dataset.tweets,
        dataset.gazetteer,
        dataset_name=name,
        engine_config=engine_config,
    )


@pytest.fixture(scope="module")
def baselines(corpora) -> dict[str, str]:
    """Serial memory-backend studies: the canonical bytes to match."""
    return {
        name: study_to_json(_study(dataset, name))
        for name, dataset in _datasets(corpora["memory"])
    }


class TestBackendSelection:
    def test_fixture_backends(self, corpora):
        assert isinstance(corpora["memory"].korean.gazetteer, Gazetteer)
        assert isinstance(corpora["mmap"].korean.gazetteer, MmapGazetteer)
        assert isinstance(corpora["mmap"].ladygaga.gazetteer, MmapGazetteer)


class TestSerial:
    @pytest.mark.parametrize("name", ["korean", "ladygaga"])
    def test_byte_identical(self, corpora, baselines, name):
        dataset = dict(_datasets(corpora["mmap"]))[name]
        assert study_to_json(_study(dataset, name)) == baselines[name]


class TestProcessShards:
    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize("name", ["korean", "ladygaga"])
    def test_workers_mmap_shared_artifact(self, corpora, baselines, name, shards):
        """Process workers receive the artifact *path* (via ``__reduce__``)
        and mmap the shared file; results stay byte-identical."""
        dataset = dict(_datasets(corpora["mmap"]))[name]
        study = _study(
            dataset, name, EngineConfig(shards=shards, backend="process")
        )
        assert study_to_json(study) == baselines[name]


class TestStreamingResume:
    def test_crash_resume_byte_identical(self, corpora, baselines, tmp_path):
        """A crash-resumed stream over the mmap-backed dataset converges to
        the memory-backend batch bytes."""
        dataset = corpora["mmap"].ladygaga

        def run(resume: bool, max_batches=None):
            accumulator = IncrementalStudyAccumulator(
                dataset.gazetteer, dataset.users
            )
            log = CheckpointLog(tmp_path / "checkpoints.jsonl")
            wal_path = tmp_path / "wal.jsonl"
            if resume:
                consumer, offset = StreamConsumer.resume(
                    accumulator, wal_path, log, 3
                )
            else:
                consumer = StreamConsumer(accumulator, wal_path, log, 3)
                offset = 0
            source = FirehoseSource(dataset.tweets, dataset.users)
            queue = BoundedTweetQueue(512, BackpressurePolicy.BLOCK)
            config = StreamConfig(
                batch_size=128,
                capacity=512,
                policy=BackpressurePolicy.BLOCK,
                drain_every=64,
                checkpoint_every=3,
            )
            pump = StreamPump(
                source, queue, consumer, config,
                RunContext(dataset_name="ladygaga"),
            )
            return pump.run(start_offset=offset, max_batches=max_batches)

        partial = run(resume=False, max_batches=5)
        assert not partial.exhausted
        final = run(resume=True)
        assert final.exhausted
        assert study_to_json(final.result) == baselines["ladygaga"]


class TestServingHotSwap:
    def test_swap_memory_to_mmap_is_a_noop_deploy(self, corpora, baselines):
        """Snapshots built from each backend's study carry the same content
        digest, so hot-swapping between them changes nothing readers see."""
        memory_study = _study(corpora["memory"].korean, "korean")
        mmap_study = _study(corpora["mmap"].korean, "korean")
        assert study_to_json(memory_study) == baselines["korean"]

        before = ServingSnapshot.from_study(memory_study)
        after = ServingSnapshot.from_study(mmap_study)
        assert after.version == before.version

        store = SnapshotStore(before)
        regions_before = handle_regions(store.current())
        stats_before = handle_stats(store.current())
        store.swap(after)
        assert store.current() is after
        assert handle_regions(store.current()) == regions_before
        assert handle_stats(store.current()) == stats_before
