"""Tests for the offline geodata pipeline and the mmap gazetteer backend."""
