"""RGAZ1 artifact round trips, validation failures, and f64 sections."""

import json

import pytest

from repro.columnar.share import BufferReader, BufferWriter
from repro.errors import StorageError, UnknownRegionError
from repro.geo.gazetteer import Gazetteer
from repro.geo.point import GeoPoint
from repro.geo.polygon import BoundaryPolygon
from repro.geo.region import District, DistrictKind
from repro.geodata.artifact import (
    GAZETTEER_FORMAT_VERSION,
    gazetteer_artifact_info,
    open_gazetteer_artifact,
    write_gazetteer_artifact,
)
from repro.geodata.mmapgaz import MmapGazetteer


def _district(name, state, lat, lon, aliases=()):
    return District(
        name=name,
        state=state,
        country="South Korea",
        kind=DistrictKind.CITY,
        center=GeoPoint(lat, lon),
        radius_km=5.0,
        aliases=aliases,
    )


class TestF64Sections:
    def test_round_trip_exact(self, tmp_path):
        """Float64 survives the buffer bit-exactly, including edge values."""
        values = [0.0, -0.0, 1.5, -180.0, 90.0, 37.5665, 1e-300, 1.7e308]
        writer = BufferWriter()
        writer.add_f64("col", values)
        path = writer.write(tmp_path / "f64.buf")
        with BufferReader(path) as reader:
            column = reader.f64("col")
            assert list(column) == values

    def test_kind_mismatch_rejected(self, tmp_path):
        writer = BufferWriter()
        writer.add_f64("col", [1.0])
        path = writer.write(tmp_path / "f64.buf")
        with BufferReader(path) as reader:
            with pytest.raises(StorageError):
                reader.i64("col")

    def test_bad_typecode_rejected(self):
        from array import array

        writer = BufferWriter()
        with pytest.raises(StorageError):
            writer.add_f64("col", array("q", [1]))


class TestWriteValidation:
    def test_empty_catalogue_rejected(self, tmp_path):
        with pytest.raises(UnknownRegionError):
            write_gazetteer_artifact(tmp_path / "x.rgaz", [], grid_deg=0.5)

    def test_duplicate_keys_rejected(self, tmp_path):
        d = _district("A-si", "X-do", 37.0, 127.0)
        with pytest.raises(UnknownRegionError):
            write_gazetteer_artifact(tmp_path / "x.rgaz", [d, d], grid_deg=0.5)

    def test_polygon_unknown_district_rejected(self, tmp_path):
        d = _district("A-si", "X-do", 37.0, 127.0)
        polygon = BoundaryPolygon([[(36.9, 126.9), (37.1, 126.9), (37.1, 127.1)]])
        with pytest.raises(UnknownRegionError):
            write_gazetteer_artifact(
                tmp_path / "x.rgaz",
                [d],
                grid_deg=0.5,
                polygons=[(("X-do", "Nope-si"), polygon)],
            )


class TestOpenValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError, match="not found"):
            open_gazetteer_artifact(tmp_path / "absent.rgaz")

    def test_not_a_buffer_file(self, tmp_path):
        path = tmp_path / "junk.rgaz"
        path.write_bytes(b"definitely not a columnar buffer file")
        with pytest.raises(StorageError):
            open_gazetteer_artifact(path)

    def test_buffer_without_gazetteer_meta(self, tmp_path):
        writer = BufferWriter()
        writer.add_i64("other", [1, 2, 3])
        path = writer.write(tmp_path / "plain.buf")
        with pytest.raises(StorageError, match="meta"):
            open_gazetteer_artifact(path)

    def test_wrong_format_marker(self, tmp_path):
        writer = BufferWriter()
        writer.add_blob("meta", json.dumps({"format": "NOTGAZ", "version": 1}).encode())
        path = writer.write(tmp_path / "other.buf")
        with pytest.raises(StorageError, match="not a gazetteer artifact"):
            open_gazetteer_artifact(path)

    def test_version_mismatch(self, tmp_path):
        writer = BufferWriter()
        writer.add_blob(
            "meta",
            json.dumps(
                {"format": "RGAZ1", "version": GAZETTEER_FORMAT_VERSION + 1}
            ).encode(),
        )
        path = writer.write(tmp_path / "future.rgaz")
        with pytest.raises(StorageError, match="version"):
            open_gazetteer_artifact(path)

    def test_truncated_artifact(self, tmp_path):
        source = write_gazetteer_artifact(
            tmp_path / "ok.rgaz",
            [_district("A-si", "X-do", 37.0, 127.0)],
            grid_deg=0.5,
        )
        clipped = tmp_path / "clipped.rgaz"
        clipped.write_bytes(source.read_bytes()[:40])
        with pytest.raises(StorageError):
            open_gazetteer_artifact(clipped)


class TestInfo:
    def test_info_counts_and_sections(self, artifact_dir):
        info = gazetteer_artifact_info(artifact_dir / "korean.rgaz")
        assert info["format"] == "RGAZ1"
        assert info["version"] == GAZETTEER_FORMAT_VERSION
        assert info["districts"] == len(Gazetteer.korean())
        assert info["polygons"] == 0
        assert info["grid_deg"] == 0.5
        assert "grid.keys" in info["sections"]
        assert "strings.bytes" in info["sections"]
        assert info["bytes"] > 0

    def test_polygon_round_trip(self, tmp_path):
        """Polygons (rings, holes, bboxes) survive the artifact exactly."""
        district = _district("A-si", "X-do", 37.0, 127.0)
        polygon = BoundaryPolygon(
            [
                [(36.8, 126.8), (37.2, 126.8), (37.2, 127.2), (36.8, 127.2)],
                [(36.95, 126.95), (37.05, 126.95), (37.05, 127.05)],
            ]
        )
        path = write_gazetteer_artifact(
            tmp_path / "poly.rgaz",
            [district],
            grid_deg=0.5,
            polygons=[(("X-do", "A-si"), polygon)],
        )
        gazetteer = MmapGazetteer(path)
        assert gazetteer._polygon_count() == 1
        assert gazetteer._polygon_at(0) == polygon
        assert gazetteer._polygon_bbox(0) == polygon.bbox
        assert gazetteer._polygon_district_index(0) == 0
