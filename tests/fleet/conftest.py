"""Fleet test rig: in-process replicas over real sockets.

Subprocess replicas (the production path) cost ~2s each to boot, so most
fleet tests run against *in-process* replicas instead: a real
:class:`~repro.serving.http.ServingApp` on a real
:class:`~repro.serving.aio.ThreadedServerHandle` socket, whose
``snapshot_loader`` resolves opaque version keys (``"v1"``, ``"v2"``)
from a dict instead of reading disk.  The publisher and controller do
not care — a "path" is just the string replicas are told to load — so
the whole publish/rollout machinery runs unmodified while tests stay
fast and can inject faults by wrapping the app.  The subprocess path
gets its own dedicated tests in ``test_subprocess_fleet.py``.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import NotFoundError
from repro.fleet import ReplicaSet, ReplicaTarget
from repro.geo.reverse import ReverseGeocoder
from repro.geocode.backend import DirectBackend
from repro.geocode.service import GeocodeService
from repro.serving import ServingApp, ServingSnapshot, SnapshotStore
from repro.serving.aio import ThreadedServerHandle
from repro.serving.http import DATA_ENDPOINTS
from urllib.parse import urlsplit


@pytest.fixture(scope="session")
def korean_snapshot(small_ctx) -> ServingSnapshot:
    return ServingSnapshot.from_study(small_ctx.korean_study)


@pytest.fixture(scope="session")
def ladygaga_snapshot(small_ctx) -> ServingSnapshot:
    return ServingSnapshot.from_study(small_ctx.ladygaga_study)


class FaultInjector:
    """App wrapper that misbehaves on demand (canary fault injection).

    ``mode`` is ``None`` (transparent), ``"errors"`` (data endpoints
    answer 500), or ``"slow"`` (data endpoints stall ``delay_s`` first) —
    the two canary faults the rollout gate must catch.
    """

    def __init__(self, app: ServingApp | None = None, delay_s: float = 0.05):
        self.app = app  # wired to the replica's real app by the rig
        self.mode: str | None = None
        self.delay_s = delay_s

    @property
    def metrics(self):
        return self.app.metrics

    def dispatch(self, method: str, target: str) -> tuple[int, bytes]:
        path = urlsplit(target).path.rstrip("/") or "/"
        if path in DATA_ENDPOINTS:
            if self.mode == "errors":
                return 500, b'{"error": "injected canary fault"}'
            if self.mode == "slow":
                time.sleep(self.delay_s)
        return self.app.dispatch(method, target)

    def dispatch_blocks(self, method: str, target: str) -> bool:
        return self.app.dispatch_blocks(method, target)


class InProcessReplica:
    """One in-process replica: app + threaded server + fleet target."""

    def __init__(
        self,
        replica_id: str,
        snapshots: dict[str, ServingSnapshot],
        boot: str,
        gazetteer,
        fault: FaultInjector | None = None,
        on_load=None,
    ):
        self.replica_id = replica_id

        def snapshot_loader(path: str) -> ServingSnapshot:
            if path not in snapshots:
                raise NotFoundError(f"unknown snapshot key: {path}")
            if on_load is not None:
                on_load(self, path)
            return snapshots[path]

        self.app = ServingApp(
            SnapshotStore(snapshots[boot]),
            GeocodeService(DirectBackend(ReverseGeocoder(gazetteer))),
            snapshot_loader=snapshot_loader,
        )
        self.fault = fault
        mounted = self.app if fault is None else fault
        if fault is not None:
            fault.app = self.app
        self.server = ThreadedServerHandle(mounted).start()
        self.target = ReplicaTarget(replica_id, "127.0.0.1", self.server.port)

    @property
    def port(self) -> int:
        return self.server.port

    def kill(self) -> None:
        """Simulate process death: stop the server AND drop pooled
        keep-alive connections (a dead process closes its sockets; the
        in-process server's lingering handler threads would otherwise
        keep serving the old pool)."""
        port = self.server.port
        self.server.shutdown()
        self.target.rebind(port)

    def stop(self) -> None:
        self.target.close()
        self.server.shutdown()


@pytest.fixture
def make_fleet(small_ctx, korean_snapshot, ladygaga_snapshot):
    """Factory building an in-process fleet and tearing it down after.

    Returns ``(replicas: list[InProcessReplica], targets: ReplicaSet)``.
    The default snapshot catalogue maps ``"v1"`` to the Korean snapshot
    and ``"v2"`` to the Lady Gaga one — two genuinely different digests.
    """
    built: list[InProcessReplica] = []
    sets: list[ReplicaSet] = []

    def build(
        count: int = 3,
        snapshots: dict[str, ServingSnapshot] | None = None,
        boot: str = "v1",
        faults: dict[int, FaultInjector] | None = None,
        on_load=None,
    ):
        catalogue = snapshots or {"v1": korean_snapshot, "v2": ladygaga_snapshot}
        targets = ReplicaSet()
        replicas = []
        for index in range(count):
            replica = InProcessReplica(
                f"r{index}",
                catalogue,
                boot,
                small_ctx.korean_dataset.gazetteer,
                fault=(faults or {}).get(index),
                on_load=on_load,
            )
            replicas.append(replica)
            built.append(replica)
            targets.add(replica.target)
        sets.append(targets)
        return replicas, targets

    yield build
    for replica in built:
        replica.stop()


@pytest.fixture
def fleet_geocoder(small_ctx):
    """A fresh geocode service over the Korean gazetteer."""
    return GeocodeService(
        DirectBackend(ReverseGeocoder(small_ctx.korean_dataset.gazetteer))
    )
