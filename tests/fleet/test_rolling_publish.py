"""The fleet-wide allowed-set property under a rolling publish.

While a health-gated publish migrates the fleet from snapshot v1 to v2
under concurrent client load, every response served anywhere in the
fleet must be byte-identical to what *one* of the two versions answers —
never a torn, mixed, or third-state body.  This generalises the PR 5/8
hot-swap parity check across process boundaries: the canary holds v2
while the rest serve v1, the promote fan-out flips replicas one at a
time, and the front's retries stitch it all together; none of that may
ever be visible in response bytes.

Runs on both seed datasets (each takes a turn as the outgoing version)
and both front transports.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.fleet import (
    FleetController,
    FleetFront,
    RolloutConfig,
    SnapshotPublisher,
)
from repro.serving import ServingSnapshot, start_background_server
from tests.serving.test_parity import _make_app
from tests.serving.wire import WireClient

_CLIENTS = 3


def _corpus(v1: ServingSnapshot, v2: ServingSnapshot) -> list[tuple[str, str]]:
    """Snapshot-backed GET targets, valid and invalid under either version."""
    corpus = [("GET", "/stats"), ("GET", "/regions")]
    for snapshot in (v1, v2):
        corpus.extend(
            ("GET", f"/lookup?user={uid}") for uid in sorted(snapshot.users)[:2]
        )
        corpus.extend(
            ("GET", f"/region?state={state}")
            for state in sorted(snapshot.regions)[:2]
        )
    corpus.append(("GET", "/lookup?user=999999999"))
    corpus.append(("GET", "/region?state=Atlantis"))
    return corpus


@pytest.mark.parametrize("transport", ["thread", "asyncio"])
@pytest.mark.parametrize("base", ["korean", "ladygaga"])
class TestRollingPublish:
    def test_every_response_matches_one_of_the_two_versions(
        self, small_ctx, korean_snapshot, ladygaga_snapshot, base, transport,
        make_fleet,
    ):
        v1, v2 = (
            (korean_snapshot, ladygaga_snapshot)
            if base == "korean"
            else (ladygaga_snapshot, korean_snapshot)
        )
        corpus = _corpus(v1, v2)
        ref_v1 = _make_app(small_ctx, base, v1)
        ref_v2 = _make_app(small_ctx, base, v2)
        allowed = {
            target: {
                ref_v1.dispatch(method, target),
                ref_v2.dispatch(method, target),
            }
            for method, target in corpus
        }

        replicas, targets = make_fleet(
            count=3, snapshots={"v1": v1, "v2": v2}, boot="v1"
        )
        front = FleetFront(targets)
        controller = FleetController(
            front,
            SnapshotPublisher(targets, metrics=front.metrics),
            current_path="v1",
            config=RolloutConfig(min_shadow_samples=5, shadow_timeout_s=20.0),
            metrics=front.metrics,
        )
        server = start_background_server(front, transport)
        stop = threading.Event()
        failures: list[str] = []
        passes = [0] * _CLIENTS

        def client_worker(index: int):
            try:
                with WireClient(server.port) as client:
                    while True:
                        for method, target in corpus:
                            client.send(method, target)
                            status, _, body = client.read_response()
                            if (status, body) not in allowed[target]:
                                failures.append(
                                    f"client {index}: {method} {target} answered "
                                    f"{status} with a body matching neither "
                                    "snapshot version"
                                )
                        passes[index] += 1
                        # Every client finishes at least one full pass
                        # *after* the rollout completes, so the post-
                        # promote state is exercised too.
                        if stop.is_set():
                            return
            except Exception as exc:  # surfaced after join
                failures.append(f"client {index}: error: {exc!r}")

        workers = [
            threading.Thread(target=client_worker, args=(i,))
            for i in range(_CLIENTS)
        ]
        try:
            for worker in workers:
                worker.start()
            controller.start_publish("v2")
            assert controller.wait(timeout_s=60.0), "rollout never finished"
            stop.set()
            for worker in workers:
                worker.join(timeout=30.0)
                assert not worker.is_alive(), "client worker hung"
        finally:
            stop.set()
            server.shutdown()
            controller.shutdown()

        assert not failures, failures[:5]
        assert all(count >= 1 for count in passes)

        outcome = controller.status()["last_rollout"]
        assert outcome["promoted"] is True, outcome
        for replica in replicas:
            assert replica.app.store.current().digest == v2.digest
        # And with the fleet converged, responses equal v2's exactly.
        for method, target in corpus:
            assert front.dispatch(method, target) == ref_v2.dispatch(method, target)
