"""Fleet serving tests."""
