"""The real thing: ``repro serve`` subprocess replicas under supervision.

These tests cross actual process boundaries — the supervisor spawns
``python -m repro serve`` children, parses their banners, restarts them
when killed — so they are slower than the in-process fleet tests and
kept deliberately few.  The kill-mid-rollout test is the acceptance
scenario for replica failure during a publish: the front keeps
answering (retrying onto survivors, counting ``fleet.retries``) and the
supervisor restarts the victim on the version the fleet is actually
committed to at that moment.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.serialization import save_study
from repro.engine import MetricsRegistry
from repro.fleet import (
    FleetController,
    FleetFront,
    ReplicaSet,
    ReplicaSupervisor,
    RolloutConfig,
    SnapshotPublisher,
)

pytestmark = pytest.mark.slow


@pytest.fixture(scope="session")
def snapshot_files(small_ctx, tmp_path_factory):
    """Both studies saved as on-disk artifacts subprocess replicas can load."""
    base = tmp_path_factory.mktemp("fleet-snapshots")
    v1 = base / "korean.json"
    v2 = base / "ladygaga.json"
    save_study(small_ctx.korean_study, v1)
    save_study(small_ctx.ladygaga_study, v2)
    return str(v1), str(v2)


def _await(predicate, timeout_s: float, what: str):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.1)
    raise AssertionError(f"timed out waiting for {what}")


@pytest.fixture
def subprocess_fleet(snapshot_files):
    """2 supervised subprocess replicas on the combined gazetteer."""
    v1, _ = snapshot_files
    targets = ReplicaSet()
    metrics = MetricsRegistry()
    supervisor = ReplicaSupervisor(
        v1,
        replicas=2,
        targets=targets,
        gazetteer="combined",
        metrics=metrics,
        poll_interval_s=0.25,
    )
    supervisor.start()
    yield supervisor, targets, metrics
    supervisor.stop()
    targets.close()


class TestSupervision:
    def test_boots_replicas_and_serves_through_the_front(self, subprocess_fleet):
        supervisor, targets, metrics = subprocess_fleet
        front = FleetFront(targets, metrics=metrics)
        assert len(targets.routable()) == 2
        for _ in range(4):
            status, body = front.dispatch("GET", "/stats")
            assert status == 200 and body
        digests = SnapshotPublisher(targets).served_digests()
        assert len(set(digests.values())) == 1  # both serve the same content
        assert None not in digests.values()

    def test_killed_replica_is_restarted_on_the_same_version(
        self, subprocess_fleet
    ):
        supervisor, targets, metrics = subprocess_fleet
        publisher = SnapshotPublisher(targets)
        before = publisher.served_digests()
        victim = supervisor.handle("r1")
        old_pid = victim.pid
        victim.kill()
        _await(
            lambda: victim.alive and victim.pid != old_pid,
            timeout_s=30.0,
            what="supervisor restart of r1",
        )
        _await(
            lambda: publisher.served_digests()["r1"] == before["r1"],
            timeout_s=10.0,
            what="restarted r1 to serve the old version",
        )
        assert supervisor.restarts >= 1
        assert metrics.snapshot()["fleet.restarts"] >= 1


class TestKillMidRollout:
    def test_front_retries_and_restart_lands_on_the_committed_version(
        self, snapshot_files, small_ctx
    ):
        v1_path, v2_path = snapshot_files
        targets = ReplicaSet()
        metrics = MetricsRegistry()
        supervisor = ReplicaSupervisor(
            v1_path,
            replicas=3,
            targets=targets,
            gazetteer="combined",
            metrics=metrics,
            poll_interval_s=1.0,  # a window to observe the corpse
        )
        supervisor.start()
        front = FleetFront(targets, metrics=metrics)
        publisher = SnapshotPublisher(targets, metrics=metrics)
        controller = FleetController(
            front,
            publisher,
            current_path=v1_path,
            config=RolloutConfig(min_shadow_samples=40, shadow_timeout_s=60.0),
            supervisor=supervisor,
            metrics=metrics,
        )
        try:
            v1_digest = publisher.served_digests()["r0"]
            assert v1_digest is not None
            controller.start_publish(v2_path)
            _await(
                lambda: controller.state_name == "shadowing",
                timeout_s=30.0,
                what="rollout to reach shadowing",
            )
            # The canary is r0 (first routable); kill a *serving* replica.
            victim = supervisor.handle("r1")
            old_pid = victim.pid
            victim.kill()

            # Keep querying through the front: every request must still be
            # answered, with the dead replica's share retried elsewhere.
            for _ in range(20):
                status, _ = front.dispatch("GET", "/stats")
                assert status == 200
            assert metrics.snapshot()["fleet.retries"] >= 1

            # The supervisor brings r1 back on the *committed* (old)
            # version — the rollout has not promoted yet.
            _await(
                lambda: victim.alive and victim.pid != old_pid,
                timeout_s=30.0,
                what="supervisor restart of r1",
            )
            _await(
                lambda: publisher.served_digests()["r1"] == v1_digest,
                timeout_s=10.0,
                what="restarted r1 back on the committed version",
            )

            # Now feed the gate until it promotes; the whole fleet —
            # including the restarted replica — converges on v2.
            deadline = time.monotonic() + 60.0
            while not controller.wait(timeout_s=0.05):
                front.dispatch("GET", "/stats")
                assert time.monotonic() < deadline, "rollout never finished"
            outcome = controller.status()["last_rollout"]
            assert outcome["promoted"] is True, outcome
            v2_digest = outcome["candidate_digest"]
            _await(
                lambda: set(publisher.served_digests().values()) == {v2_digest},
                timeout_s=15.0,
                what="fleet convergence on the promoted version",
            )
            assert supervisor.desired_path("r1") == v2_path
            assert metrics.snapshot()["fleet.restarts"] >= 1
        finally:
            controller.shutdown()
            supervisor.stop()
            targets.close()
