"""SnapshotPublisher fan-out and digest-convergence verification."""

from __future__ import annotations

from repro.engine import MetricsRegistry
from repro.fleet import SnapshotPublisher


class TestPublish:
    def test_fanout_converges_on_the_new_digest(
        self, make_fleet, ladygaga_snapshot
    ):
        replicas, targets = make_fleet(count=3)
        publisher = SnapshotPublisher(targets, metrics=MetricsRegistry())
        report = publisher.publish("v2", expected_digest=ladygaga_snapshot.digest)
        assert report.converged
        assert report.digest == ladygaga_snapshot.digest
        assert set(report.reloaded) == {"r0", "r1", "r2"}
        assert report.failed == {}
        # Every replica now actually serves the new content.
        assert publisher.converged(ladygaga_snapshot.digest)
        for replica in replicas:
            assert replica.app.store.current().digest == ladygaga_snapshot.digest

    def test_wrong_expected_digest_fails_convergence(self, make_fleet):
        _, targets = make_fleet(count=2)
        publisher = SnapshotPublisher(targets)
        report = publisher.publish("v2", expected_digest="0" * 64)
        assert not report.converged
        assert report.digest is not None  # replicas agreed with each other…
        assert set(report.reloaded) == {"r0", "r1"}  # …just not with the caller

    def test_subset_publish_touches_only_named_replicas(
        self, make_fleet, korean_snapshot, ladygaga_snapshot
    ):
        replicas, targets = make_fleet(count=3)
        publisher = SnapshotPublisher(targets)
        report = publisher.publish("v2", replica_ids=["r1"])
        assert report.converged
        assert set(report.reloaded) == {"r1"}
        assert replicas[0].app.store.current().digest == korean_snapshot.digest
        assert replicas[1].app.store.current().digest == ladygaga_snapshot.digest
        assert replicas[2].app.store.current().digest == korean_snapshot.digest

    def test_bad_snapshot_key_fails_and_keeps_old_version(
        self, make_fleet, korean_snapshot
    ):
        replicas, targets = make_fleet(count=2)
        metrics = MetricsRegistry()
        publisher = SnapshotPublisher(targets, metrics=metrics)
        report = publisher.publish("does-not-exist")
        assert not report.converged
        assert set(report.failed) == {"r0", "r1"}
        assert "reload rejected" in report.failed["r0"]
        assert metrics.snapshot()["fleet.publish_failures"] == 2
        for replica in replicas:
            assert replica.app.store.current().digest == korean_snapshot.digest

    def test_unreachable_replica_is_reported_not_raised(
        self, make_fleet, ladygaga_snapshot
    ):
        replicas, targets = make_fleet(count=2)
        replicas[0].server.shutdown()
        publisher = SnapshotPublisher(targets)
        report = publisher.publish("v2")
        assert not report.converged
        assert "unreachable" in report.failed["r0"]
        assert report.reloaded == {"r1": ladygaga_snapshot.digest}

    def test_served_digests_reads_live_health(self, make_fleet, korean_snapshot):
        replicas, targets = make_fleet(count=2)
        publisher = SnapshotPublisher(targets)
        served = publisher.served_digests()
        assert served == {
            "r0": korean_snapshot.digest,
            "r1": korean_snapshot.digest,
        }
        replicas[1].kill()
        served = publisher.served_digests()
        assert served["r0"] == korean_snapshot.digest
        assert served["r1"] is None
        assert not publisher.converged(korean_snapshot.digest)
