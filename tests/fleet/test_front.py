"""FleetFront routing, retry, admission, and fleet endpoints."""

from __future__ import annotations

import json

from repro.engine import MetricsRegistry
from repro.fleet import FleetFront, ReplicaSet
from repro.serving import TokenBucket


def _body(front: FleetFront, method: str, target: str) -> tuple[int, dict]:
    status, payload = front.dispatch(method, target)
    return status, json.loads(payload)


class TestProxying:
    def test_proxied_response_is_byte_identical_to_the_replica(self, make_fleet):
        replicas, targets = make_fleet(count=2)
        front = FleetFront(targets)
        direct = replicas[0].app.dispatch("GET", "/stats")
        via_front = front.dispatch("GET", "/stats")
        assert via_front == direct

    def test_round_robin_uses_every_replica(self, make_fleet):
        replicas, targets = make_fleet(count=3)
        front = FleetFront(targets)
        for _ in range(6):
            status, _ = front.dispatch("GET", "/stats")
            assert status == 200
        snapshot = front.metrics.snapshot()
        for replica in replicas:
            key = f"fleet.replica.{replica.replica_id}.latency.count"
            assert snapshot.get(key, 0) >= 1, f"{replica.replica_id} never used"

    def test_hash_routing_pins_a_key_to_one_replica(self, make_fleet):
        replicas, targets = make_fleet(count=3)
        front = FleetFront(targets, route="hash")
        for _ in range(8):
            status, _ = front.dispatch("GET", "/lookup?user=7")
            assert status in (200, 404)
        snapshot = front.metrics.snapshot()
        used = [
            r.replica_id
            for r in replicas
            if snapshot.get(f"fleet.replica.{r.replica_id}.latency.count", 0)
        ]
        assert len(used) == 1, f"key bounced across replicas: {used}"

    def test_non_get_is_refused(self, make_fleet):
        _, targets = make_fleet(count=1)
        front = FleetFront(targets)
        status, body = _body(front, "POST", "/admin/reload")
        assert status == 405
        assert "method not allowed" in body["error"]

    def test_unknown_route_policy_rejected(self):
        try:
            FleetFront(ReplicaSet(), route="random")
        except ValueError as exc:
            assert "unknown route policy" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("bad policy accepted")


class TestRetry:
    def test_dead_replica_is_retried_on_the_next_one(self, make_fleet):
        replicas, targets = make_fleet(count=2)
        front = FleetFront(targets)
        replicas[0].server.shutdown()
        for _ in range(4):
            status, _ = front.dispatch("GET", "/stats")
            assert status == 200
        snapshot = front.metrics.snapshot()
        assert snapshot["fleet.retries"] >= 1
        assert snapshot["fleet.replica_errors"] >= 1

    def test_downed_replica_is_skipped_until_cooldown(self, make_fleet):
        replicas, targets = make_fleet(count=2)
        front = FleetFront(targets)
        replicas[0].server.shutdown()
        front.dispatch("GET", "/stats")  # discovers the corpse, marks down
        retries_before = front.metrics.snapshot()["fleet.retries"]
        for _ in range(5):
            status, _ = front.dispatch("GET", "/stats")
            assert status == 200
        # Within the cooldown no further retries are spent on the corpse.
        assert front.metrics.snapshot()["fleet.retries"] == retries_before

    def test_all_replicas_dead_is_502(self, make_fleet):
        replicas, targets = make_fleet(count=2)
        front = FleetFront(targets)
        for replica in replicas:
            replica.server.shutdown()
        status, body = _body(front, "GET", "/stats")
        assert status == 502
        assert "unreachable" in body["error"]

    def test_empty_fleet_is_503(self):
        front = FleetFront(ReplicaSet())
        status, body = _body(front, "GET", "/stats")
        assert status == 503
        assert "no replica" in body["error"]

    def test_draining_replica_fails_over(self, make_fleet):
        replicas, targets = make_fleet(count=2)
        front = FleetFront(targets)
        status, _ = replicas[0].app.drain()
        assert status == 200
        for _ in range(4):
            status, _ = front.dispatch("GET", "/stats")
            assert status == 200

    def test_whole_fleet_draining_returns_503(self, make_fleet):
        replicas, targets = make_fleet(count=2)
        front = FleetFront(targets)
        for replica in replicas:
            replica.app.drain()
        status, body = _body(front, "GET", "/stats")
        assert status == 503
        assert "draining" in body["error"]


class TestAdmission:
    def test_fleet_bucket_sheds_over_budget(self, make_fleet):
        _, targets = make_fleet(count=1)
        clock = [0.0]
        bucket = TokenBucket(rate=1.0, burst=1, clock=lambda: clock[0])
        front = FleetFront(targets, bucket=bucket)
        status, _ = front.dispatch("GET", "/stats")
        assert status == 200
        status, body = _body(front, "GET", "/stats")
        assert status == 429
        assert front.metrics.snapshot()["fleet.shed"] == 1
        clock[0] += 2.0
        status, _ = front.dispatch("GET", "/stats")
        assert status == 200

    def test_fleet_endpoints_bypass_admission(self, make_fleet):
        _, targets = make_fleet(count=1)
        bucket = TokenBucket(rate=1.0, burst=1, clock=lambda: 0.0)
        front = FleetFront(targets, bucket=bucket)
        front.dispatch("GET", "/stats")
        for _ in range(3):
            status, _ = front.dispatch("GET", "/fleet/healthz")
            assert status == 200


class TestFleetEndpoints:
    def test_healthz_lists_replicas(self, make_fleet):
        replicas, targets = make_fleet(count=2)
        front = FleetFront(targets)
        status, body = _body(front, "GET", "/fleet/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["routable"] == 2
        assert {row["id"] for row in body["replicas"]} == {"r0", "r1"}
        assert {row["port"] for row in body["replicas"]} == {
            r.port for r in replicas
        }

    def test_healthz_degrades_when_a_replica_dies(self, make_fleet):
        replicas, targets = make_fleet(count=2)
        front = FleetFront(targets)
        replicas[0].server.shutdown()
        front.dispatch("GET", "/stats")  # mark the corpse down
        status, body = _body(front, "GET", "/fleet/healthz")
        assert status == 200
        assert body["status"] == "degraded"

    def test_metrics_includes_fleet_gauges(self, make_fleet):
        _, targets = make_fleet(count=2)
        front = FleetFront(targets, metrics=MetricsRegistry())
        front.dispatch("GET", "/stats")
        status, body = _body(front, "GET", "/fleet/metrics")
        assert status == 200
        metrics = body["metrics"]
        assert metrics["fleet.replicas"] == 2
        assert metrics["fleet.replicas_healthy"] == 2
        assert metrics["fleet.requests"] >= 1

    def test_status_and_publish_require_a_controller(self, make_fleet):
        _, targets = make_fleet(count=1)
        front = FleetFront(targets)
        status, body = _body(front, "GET", "/fleet/status")
        assert (status, body["error"]) == (400, "no rollout controller attached")
        status, _ = _body(front, "POST", "/fleet/publish?snapshot=v2")
        assert status == 400

    def test_unknown_fleet_endpoint_404(self, make_fleet):
        _, targets = make_fleet(count=1)
        front = FleetFront(targets)
        status, _ = front.dispatch("GET", "/fleet/nope")
        assert status == 404

    def test_dispatch_blocks_only_for_proxied_paths(self, make_fleet):
        _, targets = make_fleet(count=1)
        front = FleetFront(targets)
        assert front.dispatch_blocks("GET", "/stats")
        assert front.dispatch_blocks("GET", "/lookup?user=1")
        assert not front.dispatch_blocks("GET", "/fleet/healthz")
