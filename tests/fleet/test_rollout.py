"""Health-gated rollout: promote on a clean canary, roll back on faults.

The two injected canary faults — an error spike and a latency-budget
breach — are the acceptance scenarios: in both, the gate must refuse
promotion, restore the canary to the committed snapshot, and leave the
whole fleet on the old version.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.errors import RolloutInProgressError
from repro.fleet import (
    VERDICT_ERROR_RATE,
    VERDICT_INSUFFICIENT,
    VERDICT_LATENCY,
    FleetController,
    FleetFront,
    RolloutConfig,
    SnapshotPublisher,
)

from tests.fleet.conftest import FaultInjector

FAST = dict(min_shadow_samples=5, shadow_timeout_s=10.0)


def _controller(front, config=None, supervisor=None):
    publisher = SnapshotPublisher(front.replicas, metrics=front.metrics)
    return FleetController(
        front,
        publisher,
        current_path="v1",
        config=config or RolloutConfig(**FAST),
        supervisor=supervisor,
        metrics=front.metrics,
    )


def _drive_until_done(front, controller, timeout_s: float = 20.0):
    """Offer data traffic while the rollout runs (feeds the mirror)."""
    deadline = time.monotonic() + timeout_s
    while not controller.wait(timeout_s=0.02):
        front.dispatch("GET", "/stats")
        front.dispatch("GET", "/regions")
        assert time.monotonic() < deadline, "rollout never finished"
    assert controller.wait(timeout_s=1.0)


def _digests(replicas):
    return {r.replica_id: r.app.store.current().digest for r in replicas}


class TestPromotion:
    def test_clean_canary_promotes_fleet_wide(
        self, make_fleet, korean_snapshot, ladygaga_snapshot
    ):
        replicas, targets = make_fleet(count=3)
        front = FleetFront(targets)
        controller = _controller(front)
        controller.start_publish("v2")
        _drive_until_done(front, controller)

        outcome = controller.status()["last_rollout"]
        assert outcome["promoted"] is True
        assert outcome["verdict"] == "pass"
        assert outcome["shadow"]["samples"] >= 5
        assert controller.current_path == "v2"
        assert controller.current_digest == ladygaga_snapshot.digest
        assert _digests(replicas) == {
            r.replica_id: ladygaga_snapshot.digest for r in replicas
        }
        assert len(targets.routable()) == 3  # canary re-admitted
        assert front.metrics.snapshot()["fleet.promotes"] == 1

    def test_promote_advances_supervisor_restart_version(self, make_fleet):
        _, targets = make_fleet(count=2)
        front = FleetFront(targets)

        class RecordingSupervisor:
            desired = None

            def set_desired_path(self, path):
                self.desired = path

        supervisor = RecordingSupervisor()
        controller = _controller(front, supervisor=supervisor)
        controller.start_publish("v2")
        _drive_until_done(front, controller)
        assert supervisor.desired == "v2"

    def test_ungated_publish_skips_the_canary_gate(
        self, make_fleet, ladygaga_snapshot
    ):
        replicas, targets = make_fleet(count=3)
        front = FleetFront(targets)
        controller = _controller(front)
        outcome = controller.publish_and_wait("v2", gated=False, timeout_s=20.0)
        assert outcome["promoted"] is True
        assert "shadow" not in outcome
        assert _digests(replicas) == {
            r.replica_id: ladygaga_snapshot.digest for r in replicas
        }

    def test_republishing_the_current_version_is_a_noop(self, make_fleet):
        _, targets = make_fleet(count=2)
        front = FleetFront(targets)
        controller = _controller(front)
        outcome = controller.publish_and_wait("v1", timeout_s=20.0)
        assert outcome["promoted"] is True
        assert "no-op" in outcome["verdict"]
        assert front.metrics.snapshot().get("fleet.rollbacks", 0) == 0

    def test_concurrent_publish_is_refused(self, make_fleet):
        _, targets = make_fleet(count=2)
        front = FleetFront(targets)
        controller = _controller(front)
        controller.start_publish("v2")
        with pytest.raises(RolloutInProgressError):
            controller.start_publish("v2")
        # …and over the wire the front maps it to 409.
        status, body = front.dispatch("POST", "/fleet/publish?snapshot=v2")
        assert status == 409
        assert "already" in json.loads(body)["error"]
        _drive_until_done(front, controller)


class TestRollback:
    def _faulty_fleet(self, make_fleet, mode: str, delay_s: float = 0.08):
        """Fleet whose r0 (the canary) misbehaves once it loads v2."""
        fault = FaultInjector(delay_s=delay_s)

        def on_load(replica, path):
            if replica.fault is not None:
                replica.fault.mode = mode if path == "v2" else None

        return make_fleet(count=3, faults={0: fault}, on_load=on_load)

    def test_error_spike_rolls_back_and_fleet_stays_on_old_version(
        self, make_fleet, korean_snapshot
    ):
        replicas, targets = self._faulty_fleet(make_fleet, "errors")
        front = FleetFront(targets)
        controller = _controller(front)
        controller.start_publish("v2")
        _drive_until_done(front, controller)

        outcome = controller.status()["last_rollout"]
        assert outcome["promoted"] is False
        assert outcome["verdict"] == VERDICT_ERROR_RATE
        assert outcome["shadow"]["error_rate"] > 0.5
        assert controller.current_path == "v1"
        assert _digests(replicas) == {
            r.replica_id: korean_snapshot.digest for r in replicas
        }
        assert outcome["rollback"]["converged"] is True
        assert len(targets.routable()) == 3
        assert front.metrics.snapshot()["fleet.rollbacks"] == 1

    def test_latency_breach_rolls_back(self, make_fleet, korean_snapshot):
        replicas, targets = self._faulty_fleet(make_fleet, "slow", delay_s=0.08)
        front = FleetFront(targets)
        config = RolloutConfig(max_p95_latency_s=0.02, **FAST)
        controller = _controller(front, config=config)
        controller.start_publish("v2")
        _drive_until_done(front, controller)

        outcome = controller.status()["last_rollout"]
        assert outcome["promoted"] is False
        assert outcome["verdict"] == VERDICT_LATENCY
        assert outcome["shadow"]["p95_latency_s"] > 0.02
        assert _digests(replicas) == {
            r.replica_id: korean_snapshot.digest for r in replicas
        }
        assert front.metrics.snapshot()["fleet.rollbacks"] == 1

    def test_no_traffic_means_no_promotion(self, make_fleet, korean_snapshot):
        """Silence is not evidence: an unproven canary rolls back."""
        replicas, targets = make_fleet(count=2)
        front = FleetFront(targets)
        config = RolloutConfig(min_shadow_samples=5, shadow_timeout_s=0.4)
        controller = _controller(front, config=config)
        outcome = controller.publish_and_wait("v2", timeout_s=20.0)
        assert outcome["promoted"] is False
        assert outcome["verdict"] == VERDICT_INSUFFICIENT
        assert _digests(replicas) == {
            r.replica_id: korean_snapshot.digest for r in replicas
        }

    def test_canary_reload_failure_changes_nothing(
        self, make_fleet, korean_snapshot
    ):
        replicas, targets = make_fleet(count=2)
        front = FleetFront(targets)
        controller = _controller(front)
        outcome = controller.publish_and_wait("broken-key", timeout_s=20.0)
        assert outcome["promoted"] is False
        assert "canary reload failed" in outcome["error"]
        assert _digests(replicas) == {
            r.replica_id: korean_snapshot.digest for r in replicas
        }
        assert controller.state_name == "idle"
        assert len(targets.routable()) == 2

    def test_mirror_is_removed_after_rollout(self, make_fleet):
        _, targets = make_fleet(count=2)
        front = FleetFront(targets)
        controller = _controller(front)
        controller.start_publish("v2")
        _drive_until_done(front, controller)
        assert front._mirror is None
