"""Properties of the consistent-hash ring.

The front leans on three guarantees: ``order`` is a deterministic
permutation of the fleet (stable owner + stable failover sequence),
removing a replica only remaps the keys it owned (minimal disruption),
and ownership stays reasonably balanced across replicas.
"""

from __future__ import annotations

from repro.fleet import HashRing

IDS = ["r0", "r1", "r2", "r3", "r4"]
KEYS = [f"/lookup?user={i}" for i in range(400)] + ["/stats", "/regions"]


class TestOrder:
    def test_order_is_a_permutation_of_the_ids(self):
        ring = HashRing(IDS)
        for key in KEYS:
            assert sorted(ring.order(key)) == sorted(IDS)

    def test_order_is_deterministic_across_ring_instances(self):
        a, b = HashRing(IDS), HashRing(IDS)
        for key in KEYS:
            assert a.order(key) == b.order(key)

    def test_owner_is_first_in_order(self):
        ring = HashRing(IDS)
        for key in KEYS:
            assert ring.owner(key) == ring.order(key)[0]

    def test_insertion_order_of_ids_does_not_matter(self):
        forward, backward = HashRing(IDS), HashRing(list(reversed(IDS)))
        for key in KEYS:
            assert forward.owner(key) == backward.owner(key)

    def test_empty_ring(self):
        ring = HashRing([])
        assert ring.order("/stats") == []
        assert ring.owner("/stats") is None

    def test_single_replica_owns_everything(self):
        ring = HashRing(["solo"])
        assert all(ring.owner(key) == "solo" for key in KEYS)


class TestMinimalDisruption:
    def test_removing_a_replica_only_remaps_its_own_keys(self):
        full = HashRing(IDS)
        removed = "r2"
        shrunk = HashRing([i for i in IDS if i != removed])
        for key in KEYS:
            before = full.owner(key)
            after = shrunk.owner(key)
            if before != removed:
                assert after == before, f"{key} moved off a surviving replica"
            else:
                assert after != removed

    def test_failover_order_skips_only_the_removed_replica(self):
        """The shrunk ring's permutation is the full ring's with the
        removed id deleted — so retries land where they always would."""
        full = HashRing(IDS)
        removed = "r4"
        shrunk = HashRing([i for i in IDS if i != removed])
        for key in KEYS[:100]:
            expected = [i for i in full.order(key) if i != removed]
            assert shrunk.order(key) == expected


class TestBalance:
    def test_ownership_is_roughly_uniform(self):
        ring = HashRing(IDS)
        counts = {replica_id: 0 for replica_id in IDS}
        for i in range(5_000):
            counts[ring.owner(f"key-{i}")] += 1
        share = 1.0 / len(IDS)
        for replica_id, count in counts.items():
            observed = count / 5_000
            assert abs(observed - share) < share * 0.5, (
                f"{replica_id} owns {observed:.1%}, expected ~{share:.1%}"
            )

    def test_more_vnodes_tighten_balance(self):
        loose = HashRing(IDS, vnodes=4)
        tight = HashRing(IDS, vnodes=128)

        def spread(ring: HashRing) -> float:
            counts = {replica_id: 0 for replica_id in IDS}
            for i in range(2_000):
                counts[ring.owner(f"key-{i}")] += 1
            return max(counts.values()) - min(counts.values())

        assert spread(tight) <= spread(loose)
