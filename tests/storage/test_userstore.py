"""Unit tests for the user store."""

import pytest

from repro.errors import DuplicateKeyError, NotFoundError, StorageError
from repro.storage.userstore import UserStore
from repro.twitter.models import MobilityClass, ProfileStyle, TwitterUser


def _user(user_id, screen_name=None, profile_location="Seoul Mapo-gu"):
    return TwitterUser(
        user_id=user_id,
        screen_name=screen_name or f"user{user_id}",
        profile_location=profile_location,
        created_at_ms=1_300_000_000_000,
        has_smartphone=True,
        home_state="Seoul",
        home_county="Mapo-gu",
        mobility=MobilityClass.HOME_ANCHORED,
        profile_style=ProfileStyle.DISTRICT,
    )


@pytest.fixture
def store():
    s = UserStore()
    s.insert_many([_user(1), _user(2, profile_location=""), _user(3)])
    return s


class TestInsert:
    def test_duplicate_id_rejected(self, store):
        with pytest.raises(DuplicateKeyError):
            store.insert(_user(1, screen_name="other"))

    def test_duplicate_screen_name_rejected(self, store):
        with pytest.raises(DuplicateKeyError):
            store.insert(_user(9, screen_name="USER1"))  # case-insensitive

    def test_insert_many_skips_duplicates(self, store):
        assert store.insert_many([_user(1), _user(4)]) == 1

    def test_upsert_replaces(self, store):
        store.upsert(_user(1, screen_name="renamed"))
        assert store.get(1).screen_name == "renamed"
        assert store.by_screen_name("renamed").user_id == 1
        with pytest.raises(NotFoundError):
            store.by_screen_name("user1")
        assert len(store) == 3


class TestRead:
    def test_get(self, store):
        assert store.get(2).user_id == 2
        with pytest.raises(NotFoundError):
            store.get(99)

    def test_contains(self, store):
        assert 1 in store
        assert 99 not in store

    def test_iteration_ordered_by_id(self, store):
        assert [u.user_id for u in store] == [1, 2, 3]

    def test_by_screen_name_case_insensitive(self, store):
        assert store.by_screen_name("UsEr3").user_id == 3

    def test_with_profile_location(self, store):
        assert [u.user_id for u in store.with_profile_location()] == [1, 3]


class TestPersistence:
    def test_roundtrip(self, store, tmp_path):
        path = tmp_path / "users.jsonl"
        assert store.save(path) == 3
        loaded = UserStore.load(path)
        assert len(loaded) == 3
        assert loaded.get(1) == store.get(1)

    def test_corrupt_record_raises(self, store, tmp_path):
        path = tmp_path / "users.jsonl"
        store.save(path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write("NOT JSON\n")
        with pytest.raises(StorageError):
            UserStore.load(path)

    def test_blank_lines_ignored(self, store, tmp_path):
        path = tmp_path / "users.jsonl"
        store.save(path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write("\n\n")
        assert len(UserStore.load(path)) == 3
