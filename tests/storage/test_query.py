"""Unit tests for the query model."""

import pytest

from repro.errors import ConfigurationError
from repro.geo.point import GeoPoint
from repro.geo.region import BoundingBox
from repro.storage.query import TimeRange, TweetQuery
from repro.twitter.models import Tweet


def _tweet(tweet_id=1, user_id=10, created_at_ms=1000, text="hello world", gps=None):
    return Tweet(
        tweet_id=tweet_id,
        user_id=user_id,
        created_at_ms=created_at_ms,
        text=text,
        coordinates=gps,
    )


class TestTimeRange:
    def test_half_open(self):
        window = TimeRange(100, 200)
        assert window.contains(100)
        assert window.contains(199)
        assert not window.contains(200)
        assert not window.contains(99)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            TimeRange(200, 100)

    def test_span(self):
        assert TimeRange(100, 250).span_ms == 150


class TestTweetQuery:
    def test_unconstrained_matches_all(self):
        assert TweetQuery().is_unconstrained
        assert TweetQuery().matches(_tweet())

    def test_user_constraint(self):
        query = TweetQuery(user_id=10)
        assert query.matches(_tweet(user_id=10))
        assert not query.matches(_tweet(user_id=11))

    def test_time_constraint(self):
        query = TweetQuery(time_range=TimeRange(500, 1500))
        assert query.matches(_tweet(created_at_ms=1000))
        assert not query.matches(_tweet(created_at_ms=2000))

    def test_gps_constraint_both_ways(self):
        gps = GeoPoint(37.5, 127.0)
        assert TweetQuery(has_gps=True).matches(_tweet(gps=gps))
        assert not TweetQuery(has_gps=True).matches(_tweet())
        assert TweetQuery(has_gps=False).matches(_tweet())
        assert not TweetQuery(has_gps=False).matches(_tweet(gps=gps))

    def test_keyword_case_insensitive(self):
        query = TweetQuery(keyword="HELLO")
        assert query.matches(_tweet(text="well hello there"))
        assert not query.matches(_tweet(text="goodbye"))

    def test_bbox_implies_gps(self):
        box = BoundingBox(37.0, 126.0, 38.0, 128.0)
        query = TweetQuery(bbox=box)
        assert query.matches(_tweet(gps=GeoPoint(37.5, 127.0)))
        assert not query.matches(_tweet(gps=GeoPoint(35.0, 129.0)))
        assert not query.matches(_tweet())  # no GPS at all

    def test_conjunction(self):
        query = TweetQuery(user_id=10, keyword="hello", has_gps=False)
        assert query.matches(_tweet())
        assert not query.matches(_tweet(user_id=11))
        assert not query.matches(_tweet(text="nope"))
