"""Property-based tests of tweet-store index consistency.

Random batches of tweets go in; every index and the persistence round
trip must agree with a brute-force model.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.point import GeoPoint
from repro.storage.query import TimeRange, TweetQuery
from repro.storage.tweetstore import TweetStore
from repro.twitter.models import Tweet


@st.composite
def tweet_batches(draw):
    """A batch of tweets with unique ids and assorted GPS/users/times."""
    count = draw(st.integers(min_value=1, max_value=40))
    ids = draw(
        st.lists(
            st.integers(min_value=1, max_value=10_000),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    tweets = []
    for tweet_id in ids:
        user_id = draw(st.integers(min_value=1, max_value=5))
        created = draw(st.integers(min_value=0, max_value=100_000))
        gps = draw(st.booleans())
        tweets.append(
            Tweet(
                tweet_id=tweet_id,
                user_id=user_id,
                created_at_ms=created,
                text=draw(st.sampled_from(["hello", "coffee", "earthquake now"])),
                coordinates=GeoPoint(37.5, 127.0) if gps else None,
            )
        )
    return tweets


class TestIndexConsistency:
    @given(tweet_batches())
    @settings(max_examples=60, deadline=None)
    def test_all_indexes_agree_with_model(self, tweets):
        store = TweetStore()
        store.insert_many(tweets)

        assert len(store) == len(tweets)
        # Time iteration order.
        stamps = [t.created_at_ms for t in store]
        assert stamps == sorted(stamps)
        # GPS index.
        assert store.gps_count() == sum(1 for t in tweets if t.has_gps)
        # Per-user timelines.
        for user_id in {t.user_id for t in tweets}:
            expected = sorted(
                (t.tweet_id for t in tweets if t.user_id == user_id)
            )
            assert [t.tweet_id for t in store.by_user(user_id)] == expected

    @given(
        tweet_batches(),
        st.integers(min_value=0, max_value=100_000),
        st.integers(min_value=0, max_value=100_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_query_equals_brute_force(self, tweets, a, b):
        store = TweetStore()
        store.insert_many(tweets)
        lo, hi = min(a, b), max(a, b)
        query = TweetQuery(time_range=TimeRange(lo, hi), has_gps=True)
        indexed = {t.tweet_id for t in store.query(query)}
        brute = {t.tweet_id for t in tweets if query.matches(t)}
        assert indexed == brute

    @given(tweet_batches())
    @settings(max_examples=30, deadline=None)
    def test_persistence_roundtrip(self, tmp_path_factory, tweets):
        store = TweetStore()
        store.insert_many(tweets)
        path = tmp_path_factory.mktemp("store") / "tweets.jsonl"
        store.save(path)
        loaded = TweetStore.load(path)
        assert len(loaded) == len(store)
        assert [t.tweet_id for t in loaded] == [t.tweet_id for t in store]
