"""Unit tests for the tweet store, including crash-recovery semantics."""

import json

import pytest

from repro.errors import DuplicateKeyError, NotFoundError, StorageError
from repro.geo.point import GeoPoint
from repro.storage.query import TimeRange, TweetQuery
from repro.storage.tweetstore import TweetStore
from repro.twitter.models import Tweet


def _tweet(tweet_id, user_id=1, created_at_ms=None, text="t", gps=False):
    return Tweet(
        tweet_id=tweet_id,
        user_id=user_id,
        created_at_ms=created_at_ms if created_at_ms is not None else tweet_id * 10,
        text=text,
        coordinates=GeoPoint(37.5, 127.0) if gps else None,
    )


@pytest.fixture
def store():
    s = TweetStore()
    s.insert_many(
        [
            _tweet(1, user_id=1, gps=True),
            _tweet(2, user_id=2),
            _tweet(3, user_id=1, gps=True, text="earthquake now"),
            _tweet(4, user_id=3),
            _tweet(5, user_id=1),
        ]
    )
    return s


class TestInsert:
    def test_duplicate_rejected(self, store):
        with pytest.raises(DuplicateKeyError):
            store.insert(_tweet(1))

    def test_insert_many_skips_duplicates(self, store):
        inserted = store.insert_many([_tweet(1), _tweet(6)])
        assert inserted == 1
        assert len(store) == 6


class TestRead:
    def test_get(self, store):
        assert store.get(3).text == "earthquake now"
        with pytest.raises(NotFoundError):
            store.get(99)

    def test_iteration_time_ordered(self, store):
        stamps = [t.created_at_ms for t in store]
        assert stamps == sorted(stamps)

    def test_by_user_sorted(self, store):
        ids = [t.tweet_id for t in store.by_user(1)]
        assert ids == [1, 3, 5]
        assert store.by_user(999) == []

    def test_user_ids(self, store):
        assert store.user_ids() == [1, 2, 3]

    def test_gps_index(self, store):
        assert store.gps_count() == 2
        assert [t.tweet_id for t in store.gps_tweets()] == [1, 3]


class TestQuery:
    def test_user_index_path(self, store):
        results = store.query(TweetQuery(user_id=1, has_gps=True))
        assert [t.tweet_id for t in results] == [1, 3]

    def test_time_index_path(self, store):
        results = store.query(TweetQuery(time_range=TimeRange(20, 41)))
        assert [t.tweet_id for t in results] == [2, 3, 4]

    def test_gps_index_path(self, store):
        results = store.query(TweetQuery(has_gps=True, keyword="earthquake"))
        assert [t.tweet_id for t in results] == [3]

    def test_full_scan_path(self, store):
        results = store.query(TweetQuery(keyword="quake"))
        assert [t.tweet_id for t in results] == [3]

    def test_index_paths_agree_with_full_scan(self, store):
        query = TweetQuery(user_id=1)
        indexed = store.query(query)
        scanned = [t for t in store if query.matches(t)]
        assert indexed == scanned


class TestPersistence:
    def test_save_load_roundtrip(self, store, tmp_path):
        path = tmp_path / "tweets.jsonl"
        assert store.save(path) == 5
        loaded = TweetStore.load(path)
        assert len(loaded) == 5
        assert loaded.get(3).text == "earthquake now"
        assert loaded.gps_count() == 2

    def test_append_log(self, store, tmp_path):
        path = tmp_path / "tweets.jsonl"
        store.save(path)
        store.append_log(path, [_tweet(6)])
        loaded = TweetStore.load(path)
        assert len(loaded) == 6

    def test_torn_tail_dropped(self, store, tmp_path):
        path = tmp_path / "tweets.jsonl"
        store.save(path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"tweet_id": 99, "user_id": 1, "crea')  # torn write
        loaded = TweetStore.load(path)
        assert len(loaded) == 5
        assert 99 not in [t.tweet_id for t in loaded]

    def test_torn_tail_valid_json_kept(self, store, tmp_path):
        path = tmp_path / "tweets.jsonl"
        store.save(path)
        record = json.dumps(_tweet(99).to_dict())
        with path.open("a", encoding="utf-8") as handle:
            handle.write(record)  # complete record, missing newline
        loaded = TweetStore.load(path)
        assert len(loaded) == 6

    def test_corrupt_middle_raises(self, store, tmp_path):
        path = tmp_path / "tweets.jsonl"
        store.save(path)
        lines = path.read_text().splitlines()
        lines[2] = "CORRUPTED"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(StorageError):
            TweetStore.load(path)

    def test_unicode_text_survives(self, tmp_path):
        store = TweetStore()
        store.insert(_tweet(1, text="지진이야!! 흔들린다"))
        path = tmp_path / "tweets.jsonl"
        store.save(path)
        assert TweetStore.load(path).get(1).text == "지진이야!! 흔들린다"


class TestAppendMany:
    """The streaming write-ahead path: one buffered write + flush per batch."""

    def test_appends_batch_and_inserts(self, store, tmp_path):
        path = tmp_path / "tweets.jsonl"
        store.save(path)
        appended = store.append_many(path, [_tweet(6), _tweet(7)])
        assert appended == 2
        assert store.get(6).tweet_id == 6  # in-memory indexes updated too
        assert len(TweetStore.load(path)) == 7

    def test_duplicate_in_batch_leaves_log_untouched(self, store, tmp_path):
        path = tmp_path / "tweets.jsonl"
        store.save(path)
        before = path.read_text(encoding="utf-8")
        with pytest.raises(DuplicateKeyError):
            store.append_many(path, [_tweet(6), _tweet(1)])
        assert path.read_text(encoding="utf-8") == before

    def test_crash_mid_batch_tears_only_the_final_line(self, store, tmp_path):
        """Regression: a crash landing mid-batch must cost at most the last
        record.  Because the batch is serialised into one buffered write,
        truncation at *any* byte count leaves every line before the cut
        intact — load() recovers all of them and drops only the torn tail.
        """
        path = tmp_path / "tweets.jsonl"
        store.save(path)
        base_size = path.stat().st_size
        store.append_many(path, [_tweet(6), _tweet(7), _tweet(8)])
        full = path.read_text(encoding="utf-8")
        batch_bytes = full.encode("utf-8")[base_size:]
        # Simulate the crash at every possible torn point inside the batch.
        for cut in range(1, len(batch_bytes)):
            path.write_bytes(full.encode("utf-8")[: base_size + cut])
            loaded = TweetStore.load(path)
            head = batch_bytes[:cut].decode("utf-8", "ignore")
            survivors = 5 + head.count("\n")
            tail = head.rsplit("\n", 1)[-1]
            if tail:
                try:
                    json.loads(tail)
                except ValueError:
                    pass
                else:
                    survivors += 1  # complete-but-unterminated final record kept
            assert len(loaded) == survivors
            # Whatever survived is a clean prefix of the batch.
            assert sorted(t.tweet_id for t in loaded) == list(
                range(1, survivors + 1)
            )
