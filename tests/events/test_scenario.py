"""Unit tests for event scenarios and witness generation."""

import pytest

from repro.errors import ConfigurationError
from repro.events.scenario import EventScenario, WitnessGenerator
from repro.geo.point import GeoPoint
from repro.grouping.topk import group_users
from repro.twitter.models import GeotaggedObservation

ONSET_MS = 1_320_000_000_000


def _obs(user_id, profile_county, tweet_county, state="Seoul"):
    return GeotaggedObservation(
        user_id=user_id,
        profile_state=state,
        profile_county=profile_county,
        tweet_state=state,
        tweet_county=tweet_county,
    )


@pytest.fixture
def groupings():
    """Users concentrated in Seoul, one firmly in Busan."""
    observations = []
    for uid in range(1, 30):
        observations += [_obs(uid, "Mapo-gu", "Mapo-gu")] * 4
        observations += [_obs(uid, "Mapo-gu", "Gangnam-gu")]
    observations += [_obs(99, "Haeundae-gu", "Haeundae-gu", state="Busan")] * 5
    return group_users(observations)


@pytest.fixture
def seoul_scenario(korean_gazetteer):
    return EventScenario(
        name="test-quake",
        epicenter=korean_gazetteer.get("Seoul", "Mapo-gu").center,
        onset_ms=ONSET_MS,
        felt_radius_km=30.0,
        report_probability=1.0,
    )


class TestScenarioValidation:
    def test_bad_radius(self):
        with pytest.raises(ConfigurationError):
            EventScenario("x", GeoPoint(0, 0), 0, felt_radius_km=0.0)

    def test_bad_probability(self):
        with pytest.raises(ConfigurationError):
            EventScenario("x", GeoPoint(0, 0), 0, report_probability=0.0)


class TestWitnessGeneration:
    def test_reports_time_ordered_after_onset(
        self, korean_gazetteer, groupings, seoul_scenario
    ):
        generator = WitnessGenerator(korean_gazetteer, seed=5)
        reports = generator.generate(seoul_scenario, groupings)
        assert reports
        stamps = [r.timestamp_ms for r in reports]
        assert stamps == sorted(stamps)
        assert all(ts >= ONSET_MS for ts in stamps)

    def test_witnesses_within_felt_radius(
        self, korean_gazetteer, groupings, seoul_scenario
    ):
        generator = WitnessGenerator(korean_gazetteer, seed=5)
        for report in generator.generate(seoul_scenario, groupings):
            distance = report.true_district.center.distance_km(
                seoul_scenario.epicenter
            )
            assert distance <= seoul_scenario.felt_radius_km

    def test_busan_user_never_witnesses_seoul_quake(
        self, korean_gazetteer, groupings, seoul_scenario
    ):
        generator = WitnessGenerator(korean_gazetteer, seed=5)
        reports = generator.generate(seoul_scenario, groupings)
        assert all(r.user_id != 99 for r in reports)

    def test_gps_rate_extremes(self, korean_gazetteer, groupings, seoul_scenario):
        all_gps = WitnessGenerator(korean_gazetteer, gps_rate=1.0, seed=5).generate(
            seoul_scenario, groupings
        )
        no_gps = WitnessGenerator(korean_gazetteer, gps_rate=0.0, seed=5).generate(
            seoul_scenario, groupings
        )
        assert all(r.gps is not None for r in all_gps)
        assert all(r.gps is None for r in no_gps)

    def test_gps_equals_true_position_when_present(
        self, korean_gazetteer, groupings, seoul_scenario
    ):
        generator = WitnessGenerator(korean_gazetteer, gps_rate=1.0, seed=5)
        for report in generator.generate(seoul_scenario, groupings):
            assert report.gps == report.true_position

    def test_text_contains_event_keyword(
        self, korean_gazetteer, groupings, seoul_scenario
    ):
        generator = WitnessGenerator(korean_gazetteer, seed=5)
        for report in generator.generate(seoul_scenario, groupings):
            assert "earthquake" in report.text.lower() or "shaking" in report.text.lower()

    def test_deterministic(self, korean_gazetteer, groupings, seoul_scenario):
        a = WitnessGenerator(korean_gazetteer, seed=5).generate(seoul_scenario, groupings)
        b = WitnessGenerator(korean_gazetteer, seed=5).generate(seoul_scenario, groupings)
        assert [(r.user_id, r.timestamp_ms) for r in a] == [
            (r.user_id, r.timestamp_ms) for r in b
        ]

    def test_invalid_gps_rate(self, korean_gazetteer):
        with pytest.raises(ConfigurationError):
            WitnessGenerator(korean_gazetteer, gps_rate=1.5)
