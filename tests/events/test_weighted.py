"""Unit tests for measurement construction from witness reports."""

import pytest

from repro.analysis.reliability import ReliabilityTable, WeightingScheme
from repro.events.scenario import WitnessReport
from repro.events.weighted import MIN_PROFILE_WEIGHT, build_measurements
from repro.grouping.stats import compute_group_statistics
from repro.grouping.topk import group_users
from repro.twitter.models import GeotaggedObservation


def _obs(user_id, profile_county, tweet_county):
    return GeotaggedObservation(
        user_id=user_id,
        profile_state="Seoul",
        profile_county=profile_county,
        tweet_state="Seoul",
        tweet_county=tweet_county,
    )


@pytest.fixture
def study(korean_gazetteer):
    observations = (
        [_obs(1, "Mapo-gu", "Mapo-gu")] * 9 + [_obs(1, "Mapo-gu", "Jung-gu")]
        + [_obs(2, "Gangnam-gu", "Jung-gu")] * 5
    )
    groupings = group_users(observations)
    table = ReliabilityTable.from_statistics(
        compute_group_statistics(groupings.values())
    )
    profiles = {
        1: korean_gazetteer.get("Seoul", "Mapo-gu"),
        2: korean_gazetteer.get("Seoul", "Gangnam-gu"),
    }
    return groupings, table, profiles


def _report(user_id, korean_gazetteer, gps=None):
    district = korean_gazetteer.get("Seoul", "Mapo-gu")
    return WitnessReport(
        user_id=user_id,
        timestamp_ms=1_000,
        text="earthquake!",
        gps=gps,
        true_position=district.center,
        true_district=district,
    )


class TestBuildMeasurements:
    def test_gps_report_gets_weight_one(self, korean_gazetteer, study):
        groupings, table, profiles = study
        point = korean_gazetteer.get("Seoul", "Mapo-gu").center
        reports = [_report(1, korean_gazetteer, gps=point)]
        [m] = build_measurements(reports, profiles, groupings, table)
        assert m.weight == 1.0
        assert m.point == point

    def test_profile_report_uses_centroid_and_group_weight(
        self, korean_gazetteer, study
    ):
        groupings, table, profiles = study
        reports = [_report(1, korean_gazetteer)]
        [m] = build_measurements(reports, profiles, groupings, table)
        assert m.point == profiles[1].center
        assert m.weight == pytest.approx(
            table.weight_for_group(groupings[1].group)
        )

    def test_none_group_user_gets_floor_weight(self, korean_gazetteer, study):
        groupings, table, profiles = study
        reports = [_report(2, korean_gazetteer)]
        [m] = build_measurements(reports, profiles, groupings, table)
        assert m.weight == MIN_PROFILE_WEIGHT

    def test_unknown_profile_dropped(self, korean_gazetteer, study):
        groupings, table, _ = study
        reports = [_report(7, korean_gazetteer)]
        assert build_measurements(reports, {}, groupings, table) == []

    def test_uniform_scheme_flattens_weights(self, korean_gazetteer, study):
        groupings, table, profiles = study
        reports = [_report(1, korean_gazetteer), _report(2, korean_gazetteer)]
        measurements = build_measurements(
            reports, profiles, groupings, table, WeightingScheme.UNIFORM
        )
        assert all(m.weight == 1.0 for m in measurements)

    def test_rank_reciprocal_scheme(self, korean_gazetteer, study):
        groupings, table, profiles = study
        reports = [_report(1, korean_gazetteer)]
        [m] = build_measurements(
            reports, profiles, groupings, table, WeightingScheme.RANK_RECIPROCAL
        )
        assert m.weight == 1.0  # Top-1 user: 1/1
