"""Unit and property tests for the four location estimators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InsufficientDataError
from repro.events.kalman import KalmanLocalizer, Measurement
from repro.events.particle import ParticleLocalizer
from repro.events.weighted import MedianLocalizer, WeightedCentroidLocalizer
from repro.geo.point import GeoPoint

TRUE_POINT = GeoPoint(37.50, 127.00)

ALL_ESTIMATORS = [
    WeightedCentroidLocalizer(),
    MedianLocalizer(),
    KalmanLocalizer(),
    ParticleLocalizer(seed=7),
]


def _cluster(center, count, spread_deg=0.02, weight=1.0):
    """Deterministic ring of measurements around a centre."""
    measurements = []
    for i in range(count):
        offset = spread_deg * ((i % 5) - 2) / 2.0
        measurements.append(
            Measurement(
                point=GeoPoint(center.lat + offset, center.lon - offset),
                weight=weight,
                timestamp_ms=i,
            )
        )
    return measurements


class TestCommonBehaviour:
    @pytest.mark.parametrize("estimator", ALL_ESTIMATORS, ids=lambda e: type(e).__name__)
    def test_empty_raises(self, estimator):
        with pytest.raises(InsufficientDataError):
            estimator.estimate([])

    @pytest.mark.parametrize("estimator", ALL_ESTIMATORS, ids=lambda e: type(e).__name__)
    def test_single_measurement(self, estimator):
        m = Measurement(point=TRUE_POINT, weight=1.0)
        estimate = estimator.estimate([m])
        assert estimate.distance_km(TRUE_POINT) < 15.0

    @pytest.mark.parametrize("estimator", ALL_ESTIMATORS, ids=lambda e: type(e).__name__)
    def test_converges_on_tight_cluster(self, estimator):
        measurements = _cluster(TRUE_POINT, 30)
        estimate = estimator.estimate(measurements)
        assert estimate.distance_km(TRUE_POINT) < 5.0

    @pytest.mark.parametrize("estimator", ALL_ESTIMATORS, ids=lambda e: type(e).__name__)
    def test_deterministic(self, estimator):
        measurements = _cluster(TRUE_POINT, 20)
        a = estimator.estimate(measurements)
        b = estimator.estimate(measurements)
        assert a.lat == pytest.approx(b.lat, abs=1e-9)
        assert a.lon == pytest.approx(b.lon, abs=1e-9)


class TestWeighting:
    @pytest.mark.parametrize(
        "estimator",
        [WeightedCentroidLocalizer(), KalmanLocalizer()],
        ids=lambda e: type(e).__name__,
    )
    def test_downweighted_outlier_pulls_less(self, estimator):
        cluster = _cluster(TRUE_POINT, 15)
        outlier_point = GeoPoint(35.2, 129.0)  # ~320 km away

        heavy = cluster + [Measurement(point=outlier_point, weight=1.0, timestamp_ms=99)]
        light = cluster + [Measurement(point=outlier_point, weight=0.05, timestamp_ms=99)]

        error_heavy = estimator.estimate(heavy).distance_km(TRUE_POINT)
        error_light = estimator.estimate(light).distance_km(TRUE_POINT)
        assert error_light < error_heavy

    def test_particle_weighting_avoids_early_lock_in(self):
        """The particle filter's failure mode: unreliable reports that
        arrive *first* lock the particle cloud onto the wrong place.
        Downweighting them (as the reliability table does for None-group
        profiles) lets later trustworthy reports recover the true
        location.  A single late outlier is instead absorbed by
        resampling, which is why the per-outlier test above covers only
        the centroid and Kalman estimators."""
        wrong_center = GeoPoint(37.0, 126.4)  # ~70 km off
        estimator = ParticleLocalizer(seed=7)

        def reports(wrong_weight):
            early_wrong = [
                Measurement(
                    point=GeoPoint(wrong_center.lat + 0.01 * ((i % 5) - 2),
                                   wrong_center.lon - 0.01 * ((i % 5) - 2)),
                    weight=wrong_weight,
                    timestamp_ms=i,
                )
                for i in range(8)
            ]
            late_good = [
                Measurement(
                    point=GeoPoint(TRUE_POINT.lat + 0.01 * ((i % 5) - 2),
                                   TRUE_POINT.lon - 0.01 * ((i % 5) - 2)),
                    weight=1.0,
                    timestamp_ms=100 + i,
                )
                for i in range(8)
            ]
            return early_wrong + late_good

        error_equal = estimator.estimate(reports(1.0)).distance_km(TRUE_POINT)
        error_down = estimator.estimate(reports(0.05)).distance_km(TRUE_POINT)
        assert error_down < error_equal
        assert error_down < 15.0

    def test_centroid_exact_weighted_mean(self):
        measurements = [
            Measurement(point=GeoPoint(0.0, 0.0), weight=0.25),
            Measurement(point=GeoPoint(1.0, 1.0), weight=0.75),
        ]
        estimate = WeightedCentroidLocalizer().estimate(measurements)
        assert estimate.lat == pytest.approx(0.75)
        assert estimate.lon == pytest.approx(0.75)

    def test_median_ignores_weights(self):
        cluster = _cluster(TRUE_POINT, 9)
        outlier = Measurement(point=GeoPoint(35.2, 129.0), weight=1.0, timestamp_ms=50)
        down = Measurement(point=GeoPoint(35.2, 129.0), weight=0.05, timestamp_ms=50)
        median = MedianLocalizer()
        a = median.estimate(cluster + [outlier])
        b = median.estimate(cluster + [down])
        assert a.distance_km(b) < 0.001

    def test_invalid_weight_rejected(self):
        with pytest.raises(InsufficientDataError):
            Measurement(point=TRUE_POINT, weight=0.0)
        with pytest.raises(InsufficientDataError):
            Measurement(point=TRUE_POINT, weight=1.5)


class TestRobustness:
    def test_median_more_robust_than_centroid(self):
        cluster = _cluster(TRUE_POINT, 10)
        outliers = [
            Measurement(point=GeoPoint(35.2, 129.0), weight=1.0, timestamp_ms=90 + i)
            for i in range(3)
        ]
        measurements = cluster + outliers
        centroid_error = WeightedCentroidLocalizer().estimate(measurements).distance_km(TRUE_POINT)
        median_error = MedianLocalizer().estimate(measurements).distance_km(TRUE_POINT)
        assert median_error < centroid_error

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=36.0, max_value=38.0),
                st.floats(min_value=126.0, max_value=128.0),
                st.floats(min_value=0.05, max_value=1.0),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_estimates_inside_measurement_hull_band(self, rows):
        measurements = [
            Measurement(point=GeoPoint(lat, lon), weight=w, timestamp_ms=i)
            for i, (lat, lon, w) in enumerate(rows)
        ]
        lats = [m.point.lat for m in measurements]
        lons = [m.point.lon for m in measurements]
        for estimator in (WeightedCentroidLocalizer(), KalmanLocalizer(), MedianLocalizer()):
            estimate = estimator.estimate(measurements)
            assert min(lats) - 0.1 <= estimate.lat <= max(lats) + 0.1
            assert min(lons) - 0.1 <= estimate.lon <= max(lons) + 0.1
