"""Unit tests for TwitterMonitor-style trend detection."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.events.trends import TrendDetector
from repro.twitter.idgen import SnowflakeGenerator
from repro.twitter.models import Tweet

BASE_MS = 1_314_835_200_000
_CHATTER = (
    "so sleepy today honestly",
    "what should i have for lunch",
    "this weather is something else",
    "watching the game tonight with friends",
    "coffee first then everything else",
)


def _stream(texts_with_offsets):
    idgen = SnowflakeGenerator(worker_id=5)
    tweets = []
    for offset_ms, text in texts_with_offsets:
        ts = BASE_MS + offset_ms
        tweets.append(
            Tweet(tweet_id=idgen.next_id(ts), user_id=1, created_at_ms=ts, text=text)
        )
    return tweets


def _background(hours, per_hour=6, seed=3):
    rng = random.Random(seed)
    rows = []
    for hour in range(hours):
        for _ in range(per_hour):
            rows.append(
                (hour * 3_600_000 + rng.randrange(3_600_000), rng.choice(_CHATTER))
            )
    rows.sort()
    return rows


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TrendDetector(window_ms=0)
        with pytest.raises(ConfigurationError):
            TrendDetector(burst_ratio=1.0)


class TestDetection:
    def test_quiet_stream_no_trends(self):
        detector = TrendDetector(min_count=8)
        trends = detector.run(_stream(_background(hours=30)))
        assert trends == []

    def test_detects_injected_burst(self):
        rows = _background(hours=30)
        burst_start = 27 * 3_600_000
        rows += [
            (burst_start + i * 60_000, "earthquake everything is shaking")
            for i in range(12)
        ]
        rows.sort()
        detector = TrendDetector(min_count=5)
        trends = detector.run(_stream(rows))
        assert trends
        assert "earthquake" in trends[0].keywords
        assert trends[0].tweet_count >= 5
        assert "earthquake" in trends[0].sample_text

    def test_cooccurring_keywords_grouped(self):
        rows = _background(hours=30)
        burst_start = 27 * 3_600_000
        rows += [
            (burst_start + i * 60_000, "earthquake shaking downtown everyone outside")
            for i in range(12)
        ]
        rows.sort()
        detector = TrendDetector(min_count=5)
        trends = detector.run(_stream(rows))
        assert trends
        keywords = trends[0].keywords
        assert "earthquake" in keywords and "shaking" in keywords

    def test_cooldown_suppresses_rediscovery(self):
        rows = _background(hours=30)
        burst_start = 27 * 3_600_000
        rows += [
            (burst_start + i * 60_000, "earthquake again earthquake")
            for i in range(30)
        ]
        rows.sort()
        detector = TrendDetector(min_count=5, cooldown_ms=10**12)
        trends = detector.run(_stream(rows))
        quake_trends = [t for t in trends if "earthquake" in t.keywords]
        assert len(quake_trends) == 1

    def test_steady_chatter_keyword_never_trends(self):
        # "coffee" appears constantly; a constant rate is not a burst.
        rows = _background(hours=36, per_hour=10)
        detector = TrendDetector(min_count=5, burst_ratio=3.0)
        trends = detector.run(_stream(rows))
        assert all("coffee" not in t.keywords for t in trends)

    def test_detection_time_in_burst_window(self):
        rows = _background(hours=30)
        burst_start = 27 * 3_600_000
        rows += [
            (burst_start + i * 60_000, "earthquake shaking now") for i in range(12)
        ]
        rows.sort()
        detector = TrendDetector(min_count=5)
        trends = detector.run(_stream(rows))
        first = trends[0]
        assert BASE_MS + burst_start <= first.detected_at_ms
        assert first.detected_at_ms <= BASE_MS + burst_start + 30 * 60_000
