"""Unit tests for Twitris-style spatio-temporal-thematic summaries."""

import pytest

from repro.errors import InsufficientDataError
from repro.events.twitris import SliceKey, TwitrisSummarizer
from repro.geo.gazetteer import Gazetteer
from repro.geo.reverse import ReverseGeocoder
from repro.twitter.models import Tweet

DAY_MS = 86_400_000
BASE_MS = 1_314_835_200_000


def _tweet(tweet_id, text, district, day_offset=0, gps=True):
    return Tweet(
        tweet_id=tweet_id,
        user_id=tweet_id,
        created_at_ms=BASE_MS + day_offset * DAY_MS,
        text=text,
        coordinates=district.center if gps else None,
        true_state=district.state,
        true_county=district.name,
    )


@pytest.fixture
def summarizer(korean_gazetteer):
    return TwitrisSummarizer(ReverseGeocoder(korean_gazetteer))


@pytest.fixture
def gangnam(korean_gazetteer):
    return korean_gazetteer.get("Seoul", "Gangnam-gu")


@pytest.fixture
def haeundae(korean_gazetteer):
    return korean_gazetteer.get("Busan", "Haeundae-gu")


class TestIngest:
    def test_only_gps_tweets_sliced(self, summarizer, gangnam):
        sliced = summarizer.ingest(
            [
                _tweet(1, "coffee time", gangnam),
                _tweet(2, "no gps here", gangnam, gps=False),
            ]
        )
        assert sliced == 1
        assert summarizer.corpus.doc_count == 2  # both feed the corpus

    def test_slices_keyed_by_district_and_day(self, summarizer, gangnam, haeundae):
        summarizer.ingest(
            [
                _tweet(1, "a", gangnam, day_offset=0),
                _tweet(2, "b", gangnam, day_offset=1),
                _tweet(3, "c", haeundae, day_offset=0),
            ]
        )
        keys = summarizer.slice_keys()
        assert len(keys) == 3
        assert keys == sorted(keys, key=lambda k: (k.day, k.state, k.county))


class TestSummaries:
    def test_event_terms_surface(self, summarizer, gangnam):
        chatter = [
            _tweet(i, "coffee and weather talk", gangnam) for i in range(1, 30)
        ]
        event = [
            _tweet(100 + i, "earthquake shaking earthquake", gangnam, day_offset=3)
            for i in range(5)
        ]
        summarizer.ingest(chatter + event)
        key = SliceKey(
            state="Seoul", county="Gangnam-gu", day=(BASE_MS + 3 * DAY_MS) // DAY_MS
        )
        summary = summarizer.summarize(key, top_k=2)
        assert summary.top_terms[0].term == "earthquake"
        assert summary.tweet_count == 5

    def test_unpopulated_slice_raises(self, summarizer):
        with pytest.raises(InsufficientDataError):
            summarizer.summarize(SliceKey("Seoul", "Gangnam-gu", 0))

    def test_summarize_all_min_tweets(self, summarizer, gangnam, haeundae):
        summarizer.ingest(
            [_tweet(i, "hello", gangnam) for i in range(1, 5)]
            + [_tweet(10, "solo", haeundae)]
        )
        summaries = summarizer.summarize_all(min_tweets=3)
        assert len(summaries) == 1
        assert summaries[0].key.county == "Gangnam-gu"
