"""Unit tests for the event-tweet classifier."""

import pytest

from repro.errors import InsufficientDataError
from repro.events.classifier import (
    EventTweetClassifier,
    LabeledTweet,
    default_training_set,
    extract_features,
)


@pytest.fixture(scope="module")
def trained():
    classifier = EventTweetClassifier()
    classifier.fit(default_training_set())
    return classifier


class TestFeatures:
    def test_fixed_length(self):
        a = extract_features("earthquake now!", ("earthquake",))
        b = extract_features("", ("earthquake",))
        assert len(a) == len(b) == 8

    def test_query_presence_flag(self):
        with_query = extract_features("big earthquake here", ("earthquake",))
        without = extract_features("big sandwich here", ("earthquake",))
        assert with_query[1] == 1.0
        assert without[1] == 0.0

    def test_bias_term(self):
        assert extract_features("anything", ("q",))[-1] == 1.0


class TestTraining:
    def test_untrained_raises(self):
        with pytest.raises(InsufficientDataError):
            EventTweetClassifier().predict_proba("earthquake!")

    def test_single_class_rejected(self):
        classifier = EventTweetClassifier()
        with pytest.raises(InsufficientDataError):
            classifier.fit([LabeledTweet("a", True), LabeledTweet("b", True)])

    def test_is_trained_flag(self, trained):
        assert trained.is_trained
        assert not EventTweetClassifier().is_trained

    def test_training_separates_training_data(self, trained):
        correct = sum(
            1
            for example in default_training_set()
            if trained.predict(example.text) == example.is_event
        )
        assert correct / len(default_training_set()) >= 0.9


class TestPrediction:
    @pytest.mark.parametrize(
        "text",
        [
            "earthquake!! everything shaking right now",
            "whoa just felt a strong earthquake here",
            "omg big earthquake happening now",
        ],
    )
    def test_live_reports_positive(self, trained, text):
        assert trained.predict(text)

    @pytest.mark.parametrize(
        "text",
        [
            "watching a documentary about the earthquake anniversary",
            "earthquake insurance quotes are wild",
            "remember the earthquake drill tomorrow",
        ],
    )
    def test_historical_mentions_negative(self, trained, text):
        assert not trained.predict(text)

    def test_proba_in_unit_interval(self, trained):
        for text in ("earthquake now", "nice weather", ""):
            assert 0.0 <= trained.predict_proba(text) <= 1.0

    def test_threshold_moves_decision(self, trained):
        text = "earthquake!! shaking right now"
        assert trained.predict(text, threshold=0.5)
        assert not trained.predict(text, threshold=1.01)

    def test_deterministic_training(self):
        a = EventTweetClassifier(seed=3)
        b = EventTweetClassifier(seed=3)
        a.fit(default_training_set())
        b.fit(default_training_set())
        text = "did you feel that earthquake just now"
        assert a.predict_proba(text) == pytest.approx(b.predict_proba(text))
