"""Integration tests for the online detector and event injection."""

import pytest

from repro.analysis.reliability import ReliabilityTable
from repro.errors import ConfigurationError
from repro.events.evaluation import make_korean_scenarios
from repro.events.injector import EventTweetInjector
from repro.events.online import OnlineEventDetector


@pytest.fixture(scope="module")
def scenario(small_ctx):
    return make_korean_scenarios(
        small_ctx.korean_dataset.gazetteer,
        onset_ms=1_316_000_000_000,  # inside the small window
    )[0]


@pytest.fixture(scope="module")
def stream(small_ctx, scenario):
    injector = EventTweetInjector(small_ctx.korean_dataset.gazetteer, gps_rate=0.2)
    background = list(small_ctx.korean_dataset.tweets)
    return injector.inject(scenario, small_ctx.korean_study.groupings, background)


def _detector(small_ctx, **kwargs):
    study = small_ctx.korean_study
    return OnlineEventDetector(
        reliability=ReliabilityTable.from_statistics(study.statistics),
        profile_districts=study.profile_districts,
        groupings=study.groupings,
        **kwargs,
    )


class TestInjector:
    def test_stream_stays_ordered(self, stream):
        ids = [t.tweet_id for t in stream]
        assert ids == sorted(ids)

    def test_event_tweets_present(self, small_ctx, scenario):
        injector = EventTweetInjector(small_ctx.korean_dataset.gazetteer)
        event_tweets = injector.event_tweets(
            scenario, small_ctx.korean_study.groupings
        )
        assert event_tweets
        for tweet in event_tweets:
            assert "earthquake" in tweet.text or "shaking" in tweet.text
            assert tweet.created_at_ms >= scenario.onset_ms

    def test_background_untouched(self, small_ctx, scenario):
        injector = EventTweetInjector(small_ctx.korean_dataset.gazetteer)
        background = list(small_ctx.korean_dataset.tweets)
        before = len(background)
        merged = injector.inject(
            scenario, small_ctx.korean_study.groupings, background
        )
        assert len(background) == before
        assert len(merged) > before

    def test_invalid_gps_rate(self, small_ctx):
        with pytest.raises(ConfigurationError):
            EventTweetInjector(small_ctx.korean_dataset.gazetteer, gps_rate=2.0)


class TestOnlineDetector:
    def test_config_validation(self, small_ctx):
        with pytest.raises(ConfigurationError):
            _detector(small_ctx, alarm_threshold=0)
        with pytest.raises(ConfigurationError):
            _detector(small_ctx, window_ms=0)

    def test_quiet_stream_no_alarm(self, small_ctx):
        detector = _detector(small_ctx)
        stats = detector.run(list(small_ctx.korean_dataset.tweets))
        assert stats.alarms == []
        assert stats.tweets_seen == len(small_ctx.korean_dataset.tweets)

    def test_detects_injected_event(self, small_ctx, scenario, stream):
        detector = _detector(small_ctx, alarm_threshold=4)
        stats = detector.run(stream)
        assert stats.alarms, "the injected quake must raise an alarm"
        first = stats.alarms[0]
        assert first.triggered_at_ms >= scenario.onset_ms
        # Alarm within an hour of onset.
        assert first.triggered_at_ms - scenario.onset_ms < 3_600_000

    def test_alarm_localizes_near_epicenter(self, small_ctx, scenario, stream):
        detector = _detector(small_ctx, alarm_threshold=4)
        stats = detector.run(stream)
        estimates = [a.estimate for a in stats.alarms if a.estimate is not None]
        assert estimates
        best = min(e.distance_km(scenario.epicenter) for e in estimates)
        assert best < scenario.felt_radius_km, (
            f"estimate {best:.1f} km from epicentre"
        )

    def test_cooldown_limits_alarm_rate(self, small_ctx, stream):
        noisy = _detector(small_ctx, alarm_threshold=4, cooldown_ms=10**12)
        stats = noisy.run(stream)
        assert len(stats.alarms) <= 1

    def test_funnel_counters_monotone(self, small_ctx, stream):
        detector = _detector(small_ctx, alarm_threshold=4)
        stats = detector.run(stream)
        assert stats.tweets_seen >= stats.keyword_hits >= stats.classified_positive

    def test_measurements_mix_gps_and_profiles(self, small_ctx, stream):
        detector = _detector(small_ctx, alarm_threshold=4)
        stats = detector.run(stream)
        first = stats.alarms[0]
        assert first.gps_measurements + first.profile_measurements > 0
        # With gps_rate 0.2 most localisable reports come from profiles.
        assert first.profile_measurements >= first.gps_measurements
