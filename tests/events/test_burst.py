"""Unit tests for burst detection and the decay model."""

import random

import pytest

from repro.errors import ConfigurationError, InsufficientDataError
from repro.events.burst import BurstDetector, fit_exponential_decay

MINUTE_MS = 60_000


def _background(rng, start_ms, hours, per_hour):
    """A quiet Poisson-ish background of positive tweets."""
    stamps = []
    for hour in range(hours):
        for _ in range(per_hour):
            stamps.append(start_ms + hour * 3_600_000 + rng.randrange(3_600_000))
    return stamps


class TestDetector:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            BurstDetector(window_ms=0)
        with pytest.raises(ConfigurationError):
            BurstDetector(baseline_windows=0)

    def test_empty_input(self):
        assert BurstDetector().detect([]) == []

    def test_detects_injected_burst(self):
        rng = random.Random(7)
        start = 1_314_835_200_000
        stamps = _background(rng, start, hours=6, per_hour=2)
        burst_at = start + 3 * 3_600_000
        stamps += [burst_at + i * 20_000 for i in range(30)]  # 30 tweets in 10 min
        alarms = BurstDetector().detect(stamps)
        assert alarms
        first = alarms[0]
        assert abs(first.window_start_ms - burst_at) <= 2 * 600_000
        assert first.observed >= 10
        assert first.surprise >= 3.0

    def test_quiet_background_no_alarm(self):
        rng = random.Random(11)
        stamps = _background(rng, 1_314_835_200_000, hours=12, per_hour=2)
        assert BurstDetector(min_count=6).detect(stamps) == []

    def test_min_count_suppresses_tiny_spikes(self):
        # Two tweets in one window after dead silence: surprising but tiny.
        stamps = [1_314_835_200_000, 1_314_835_210_000]
        assert BurstDetector(min_count=3).detect(stamps) == []

    def test_consecutive_windows_merge_into_one_alarm(self):
        start = 1_314_835_200_000
        # A 30-minute sustained burst (3 windows), preceded by silence...
        background = [start - i * 3_600_000 for i in range(1, 5)]
        burst = [start + i * 30_000 for i in range(60)]
        alarms = BurstDetector().detect(background + burst)
        assert len(alarms) == 1

    def test_alarm_fields_consistent(self):
        start = 1_314_835_200_000
        burst = [start + i * 10_000 for i in range(20)]
        alarms = BurstDetector().detect(burst)
        for alarm in alarms:
            assert alarm.window_end_ms - alarm.window_start_ms == 600_000
            assert alarm.observed >= 3


class TestDecayFit:
    def test_needs_three_points(self):
        with pytest.raises(InsufficientDataError):
            fit_exponential_decay([1, 2])

    def test_recovers_scale(self):
        rng = random.Random(13)
        onset = 1_000_000
        tau = 120_000.0
        stamps = [onset] + [
            onset + int(rng.expovariate(1.0 / tau)) for _ in range(500)
        ]
        fit = fit_exponential_decay(stamps)
        assert fit.onset_ms == onset
        assert fit.tau_ms == pytest.approx(tau, rel=0.2)

    def test_expected_fraction_monotone(self):
        fit = fit_exponential_decay([0, 100, 200, 400])
        fractions = [fit.expected_fraction_within(h) for h in (0, 100, 1_000, 10_000)]
        assert fractions == sorted(fractions)
        assert fractions[0] == 0.0
        assert fractions[-1] <= 1.0
