"""Integration tests for the E10 localisation experiment."""

import pytest

from repro.analysis.reliability import WeightingScheme
from repro.errors import InsufficientDataError
from repro.events.evaluation import (
    LocalizationExperiment,
    make_korean_scenarios,
    mean_error_by_scheme,
    render_localization_table,
)
from repro.events.scenario import EventScenario
from repro.geo.point import GeoPoint


@pytest.fixture(scope="module")
def experiment(small_ctx):
    return LocalizationExperiment(
        small_ctx.korean_study,
        small_ctx.korean_dataset.gazetteer,
        small_ctx.korean_study.profile_districts,
        gps_rate=0.2,
        seed=7,
    )


@pytest.fixture(scope="module")
def scenarios(small_ctx):
    return make_korean_scenarios(small_ctx.korean_dataset.gazetteer)


@pytest.fixture(scope="module")
def outcomes(experiment, scenarios):
    return experiment.run_localization(scenarios)


class TestLocalization:
    def test_all_combinations_present(self, outcomes, scenarios):
        names = {o.scenario_name for o in outcomes}
        estimators = {o.estimator for o in outcomes}
        schemes = {o.scheme for o in outcomes}
        assert len(estimators) == 4
        assert len(schemes) == 3
        assert names <= {s.name for s in scenarios}

    def test_errors_finite_and_positive(self, outcomes):
        for outcome in outcomes:
            assert 0.0 <= outcome.error_km < 2_000.0
            assert outcome.witness_count > 0
            assert 0 <= outcome.gps_count <= outcome.witness_count

    def test_weighting_beats_uniform_for_kalman(self, outcomes):
        means = mean_error_by_scheme(outcomes)
        uniform = means[("kalman", WeightingScheme.UNIFORM)]
        weighted = means[("kalman", WeightingScheme.GROUP_MATCHED_SHARE)]
        assert weighted < uniform

    def test_render_table(self, outcomes):
        text = render_localization_table(outcomes)
        assert "kalman" in text
        assert "uniform" in text
        assert "group_matched_share" in text

    def test_no_witness_scenario_raises(self, experiment):
        # An event in the middle of the Pacific draws no witnesses.
        lonely = EventScenario(
            name="nowhere",
            epicenter=GeoPoint(0.0, -150.0),
            onset_ms=1_320_000_000_000,
        )
        with pytest.raises(InsufficientDataError):
            experiment.run_localization([lonely])


class TestDetection:
    def test_detection_outcomes(self, experiment, scenarios):
        outcomes = experiment.run_detection(scenarios)
        assert len(outcomes) == len(scenarios)
        detected = [o for o in outcomes if o.detected]
        assert detected, "at least one scenario must be detected"
        for outcome in detected:
            assert outcome.latency_ms is not None
            assert 0 <= outcome.latency_ms <= 3_600_000  # within an hour

    def test_reliability_table_exposed(self, experiment):
        table = experiment.reliability_table
        assert 0.0 <= table.prior <= 1.0

    def test_onset_estimation(self, experiment, scenarios):
        outcomes = experiment.run_detection(scenarios)
        fitted = [o for o in outcomes if o.onset_error_ms is not None]
        assert fitted, "scenarios with >=3 positives must get an onset fit"
        for outcome in fitted:
            # First report arrives after (never before) the true onset,
            # within a few mean report delays.
            assert 0 <= outcome.onset_error_ms <= 30 * 60_000
            assert outcome.decay_tau_ms is not None
            assert outcome.decay_tau_ms > 0
