"""Edge-case tests for the online detector's window and weighting logic."""

import pytest

from repro.analysis.reliability import ReliabilityTable
from repro.events.online import OnlineEventDetector
from repro.grouping.stats import compute_group_statistics
from repro.grouping.topk import group_users
from repro.twitter.idgen import SnowflakeGenerator
from repro.twitter.models import GeotaggedObservation, Tweet

BASE_MS = 1_314_835_200_000


def _obs(user_id, profile_county, tweet_county):
    return GeotaggedObservation(
        user_id=user_id,
        profile_state="Seoul",
        profile_county=profile_county,
        tweet_state="Seoul",
        tweet_county=tweet_county,
    )


@pytest.fixture
def detector_parts(korean_gazetteer):
    observations = (
        [_obs(1, "Mapo-gu", "Mapo-gu")] * 9 + [_obs(1, "Mapo-gu", "Jung-gu")]
        + [_obs(2, "Gangnam-gu", "Jung-gu")] * 5
    )
    groupings = group_users(observations)
    table = ReliabilityTable.from_statistics(
        compute_group_statistics(groupings.values())
    )
    profiles = {
        1: korean_gazetteer.get("Seoul", "Mapo-gu"),
        2: korean_gazetteer.get("Seoul", "Gangnam-gu"),
    }
    return table, profiles, groupings


def _detector(parts, **kwargs):
    table, profiles, groupings = parts
    return OnlineEventDetector(
        reliability=table,
        profile_districts=profiles,
        groupings=groupings,
        **kwargs,
    )


def _event_tweet(idgen, user_id, offset_ms, text="earthquake!! shaking right now"):
    ts = BASE_MS + offset_ms
    return Tweet(
        tweet_id=idgen.next_id(ts), user_id=user_id, created_at_ms=ts, text=text
    )


class TestWindowMechanics:
    def test_window_expiry_prevents_stale_alarm(self, detector_parts):
        """Positives spread wider than the window never accumulate."""
        detector = _detector(detector_parts, alarm_threshold=3, window_ms=600_000)
        idgen = SnowflakeGenerator()
        # One positive every 15 minutes: window (10 min) holds at most one.
        for i in range(10):
            alarm = detector.process(_event_tweet(idgen, 1, i * 900_000))
            assert alarm is None
        assert detector.stats.classified_positive == 10
        assert detector.stats.alarms == []

    def test_cooldown_rearms_after_expiry(self, detector_parts):
        detector = _detector(
            detector_parts, alarm_threshold=2, window_ms=600_000, cooldown_ms=3_600_000
        )
        idgen = SnowflakeGenerator()
        # First burst -> one alarm.
        detector.process(_event_tweet(idgen, 1, 0))
        first = detector.process(_event_tweet(idgen, 1, 30_000))
        assert first is not None
        # Second burst inside cooldown -> suppressed.
        detector.process(_event_tweet(idgen, 1, 60_000))
        assert len(detector.stats.alarms) == 1
        # Third burst after cooldown -> fires again.
        detector.process(_event_tweet(idgen, 1, 4_000_000))
        second = detector.process(_event_tweet(idgen, 1, 4_030_000))
        assert second is not None
        assert len(detector.stats.alarms) == 2

    def test_unknown_author_without_gps_not_localisable(self, detector_parts):
        """A positive tweet from outside the study adds to the count but
        contributes no measurement."""
        detector = _detector(detector_parts, alarm_threshold=2)
        idgen = SnowflakeGenerator()
        detector.process(_event_tweet(idgen, 999, 0))
        alarm = detector.process(_event_tweet(idgen, 998, 10_000))
        assert alarm is not None
        assert alarm.window_positive_count == 2
        assert alarm.gps_measurements == 0
        assert alarm.profile_measurements == 0
        assert alarm.estimate is None

    def test_profile_weight_floor_applied(self, detector_parts, korean_gazetteer):
        """A None-group witness still yields a (floored) measurement."""
        detector = _detector(detector_parts, alarm_threshold=2)
        idgen = SnowflakeGenerator()
        detector.process(_event_tweet(idgen, 2, 0))  # user 2: None group
        alarm = detector.process(_event_tweet(idgen, 2, 10_000))
        assert alarm is not None
        assert alarm.profile_measurements == 2
        assert alarm.estimate is not None
        gangnam = korean_gazetteer.get("Seoul", "Gangnam-gu")
        assert alarm.estimate.distance_km(gangnam.center) < 50.0

    def test_keyword_prefilter_blocks_classifier(self, detector_parts):
        detector = _detector(detector_parts, alarm_threshold=1)
        idgen = SnowflakeGenerator()
        detector.process(_event_tweet(idgen, 1, 0, text="lovely coffee morning"))
        assert detector.stats.keyword_hits == 0
        assert detector.stats.classified_positive == 0

    def test_historical_mention_filtered_by_classifier(self, detector_parts):
        detector = _detector(detector_parts, alarm_threshold=1)
        idgen = SnowflakeGenerator()
        detector.process(
            _event_tweet(
                idgen, 1, 0, text="remember the earthquake drill tomorrow at school"
            )
        )
        assert detector.stats.keyword_hits == 1
        assert detector.stats.classified_positive == 0
