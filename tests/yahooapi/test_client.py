"""Unit tests for the simulated PlaceFinder client."""

import pytest

from repro.errors import RateLimitExceededError, ServiceUnavailableError
from repro.geo.gazetteer import Gazetteer
from repro.geo.point import GeoPoint
from repro.geo.reverse import ReverseGeocoder
from repro.yahooapi.client import FailurePlan, PlaceFinderClient


@pytest.fixture
def client(korean_gazetteer):
    return PlaceFinderClient(ReverseGeocoder(korean_gazetteer), daily_quota=100)


SEOUL_POINT = GeoPoint(37.5326, 126.9904)
OCEAN_POINT = GeoPoint(30.0, 140.0)


class TestLookups:
    def test_success(self, client):
        response = client.reverse_geocode(SEOUL_POINT)
        assert response.ok
        assert response.path.state == "Seoul"

    def test_no_result_is_error_response(self, client):
        response = client.reverse_geocode(OCEAN_POINT)
        assert not response.ok
        assert client.stats.no_result == 1

    def test_resolve_admin_path(self, client):
        path = client.resolve_admin_path(SEOUL_POINT)
        assert path is not None and path.state == "Seoul"
        assert client.resolve_admin_path(OCEAN_POINT) is None


class TestCache:
    def test_repeat_lookup_hits_cache(self, client):
        client.reverse_geocode(SEOUL_POINT)
        client.reverse_geocode(SEOUL_POINT)
        assert client.stats.requests == 1
        assert client.stats.cache_hits == 1

    def test_nearby_points_share_cache_cell(self, client):
        client.reverse_geocode(GeoPoint(37.53260, 126.99040))
        client.reverse_geocode(GeoPoint(37.53262, 126.99041))  # same 0.001° cell
        assert client.stats.requests == 1

    def test_distant_points_do_not(self, client):
        client.reverse_geocode(SEOUL_POINT)
        client.reverse_geocode(GeoPoint(35.1, 129.0))
        assert client.stats.requests == 2

    def test_clear_cache(self, client):
        client.reverse_geocode(SEOUL_POINT)
        client.clear_cache()
        client.reverse_geocode(SEOUL_POINT)
        assert client.stats.requests == 2
        assert client.cache_size == 1


class TestQuota:
    def test_quota_exhaustion_raises(self, korean_gazetteer):
        client = PlaceFinderClient(ReverseGeocoder(korean_gazetteer), daily_quota=3)
        for i in range(3):
            client.reverse_geocode(GeoPoint(37.0 + i * 0.1, 127.0))
        with pytest.raises(RateLimitExceededError) as exc_info:
            client.reverse_geocode(GeoPoint(36.0, 127.5))
        assert exc_info.value.retry_after_s > 0

    def test_cache_hits_do_not_consume_quota(self, korean_gazetteer):
        client = PlaceFinderClient(ReverseGeocoder(korean_gazetteer), daily_quota=1)
        for _ in range(10):
            client.reverse_geocode(SEOUL_POINT)
        assert client.stats.requests == 1


class TestFailureInjection:
    def test_every_n_fails(self, korean_gazetteer):
        client = PlaceFinderClient(
            ReverseGeocoder(korean_gazetteer),
            failure_plan=FailurePlan(every_n=2),
        )
        client.reverse_geocode(GeoPoint(37.0, 127.0))  # request 1: ok
        with pytest.raises(ServiceUnavailableError):
            client.reverse_geocode(GeoPoint(36.0, 127.5))  # request 2: fails
        assert client.stats.failures_injected == 1

    def test_resolve_admin_path_retries(self, korean_gazetteer):
        client = PlaceFinderClient(
            ReverseGeocoder(korean_gazetteer),
            failure_plan=FailurePlan(every_n=2),
        )
        client.reverse_geocode(GeoPoint(37.0, 127.0))  # burn request 1
        # Request 2 fails, retry succeeds as request 3.
        path = client.resolve_admin_path(SEOUL_POINT)
        assert path is not None
        assert client.stats.failures_injected == 1
        assert client.stats.retries == 1
        assert client.stats.retry_exhausted == 0

    def test_retries_visible_in_snapshot(self, korean_gazetteer):
        client = PlaceFinderClient(
            ReverseGeocoder(korean_gazetteer),
            failure_plan=FailurePlan(every_n=2),
        )
        client.reverse_geocode(GeoPoint(37.0, 127.0))
        client.resolve_admin_path(SEOUL_POINT)
        snapshot = client.stats.snapshot()
        assert snapshot["retries"] == 1
        assert snapshot["retry_exhausted"] == 0

    def test_exhausted_retries_counted_separately_from_no_result(
        self, korean_gazetteer
    ):
        # every_n=1: every uncached request fails, so all retries exhaust.
        client = PlaceFinderClient(
            ReverseGeocoder(korean_gazetteer),
            failure_plan=FailurePlan(every_n=1),
        )
        assert client.resolve_admin_path(SEOUL_POINT, max_retries=2) is None
        assert client.stats.retries == 2
        assert client.stats.retry_exhausted == 1
        assert client.stats.no_result == 0  # the service never answered
        # A genuine no-result is the opposite: answered, nothing found.
        clean = PlaceFinderClient(ReverseGeocoder(korean_gazetteer))
        assert clean.resolve_admin_path(OCEAN_POINT) is None
        assert clean.stats.no_result == 1
        assert clean.stats.retry_exhausted == 0

    def test_latency_accounted(self, client):
        client.reverse_geocode(SEOUL_POINT)
        client.reverse_geocode(GeoPoint(35.1, 129.0))
        assert client.stats.simulated_latency_s == pytest.approx(0.1)


class TestQuotaFailureInteraction:
    """Regression tests pinning quota × failure injection × retry.

    Documented semantics (see :class:`FailurePlan`): an injected failure
    fires *after* the request is admitted and counted against the daily
    quota — failed requests burn quota with no result, as the real 503s
    did — and each retry consumes a fresh unit of quota.
    """

    def test_injected_failure_consumes_quota(self, korean_gazetteer):
        client = PlaceFinderClient(
            ReverseGeocoder(korean_gazetteer),
            daily_quota=10,
            failure_plan=FailurePlan(every_n=1),
        )
        with pytest.raises(ServiceUnavailableError):
            client.reverse_geocode(SEOUL_POINT)
        assert client.stats.requests == 1  # burned, despite no result

    def test_retry_consumes_additional_quota(self, korean_gazetteer):
        client = PlaceFinderClient(
            ReverseGeocoder(korean_gazetteer),
            daily_quota=10,
            failure_plan=FailurePlan(every_n=2),
        )
        client.reverse_geocode(GeoPoint(37.0, 127.0))  # request 1: ok
        # Request 2 fails (quota: 2 used), retry is request 3 (quota: 3).
        assert client.resolve_admin_path(SEOUL_POINT) is not None
        assert client.stats.requests == 3
        assert client.stats.failures_injected == 1

    def test_quota_exhaustion_mid_retry_propagates(self, korean_gazetteer):
        # Quota of 1: the first request fails (and burns the budget), so
        # the retry hits the quota wall — the rate-limit error must reach
        # the caller rather than being swallowed as "unresolvable".
        client = PlaceFinderClient(
            ReverseGeocoder(korean_gazetteer),
            daily_quota=1,
            failure_plan=FailurePlan(every_n=1),
        )
        with pytest.raises(RateLimitExceededError):
            client.resolve_admin_path(SEOUL_POINT)
        assert client.stats.requests == 1
        assert client.stats.failures_injected == 1
