"""Unit and property tests for PlaceFinder XML rendering/parsing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MalformedResponseError
from repro.geo.point import GeoPoint
from repro.geo.region import AdminPath
from repro.yahooapi.xml import parse_response, render_error, render_success

names = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll"), max_codepoint=0x2FF),
    min_size=1,
    max_size=12,
)
paths = st.builds(AdminPath, names, names, names, names)
points = st.builds(
    GeoPoint,
    st.floats(min_value=-89.0, max_value=89.0),
    st.floats(min_value=-179.0, max_value=179.0),
)


class TestSuccess:
    def test_render_contains_fig5_elements(self):
        path = AdminPath("South Korea", "Seoul", "Yongsan-gu", "Itaewon-dong")
        doc = render_success(GeoPoint(37.5326, 126.9904), path, quality=87)
        for tag in ("<ResultSet", "<Result>", "<location>", "<country>",
                    "<state>", "<county>", "<town>"):
            assert tag in doc

    def test_parse_success(self):
        path = AdminPath("South Korea", "Seoul", "Yongsan-gu", "Itaewon-dong")
        response = parse_response(render_success(GeoPoint(37.5326, 126.9904), path, 87))
        assert response.ok
        assert response.path == path
        assert response.quality == 87
        assert response.point.lat == pytest.approx(37.5326, abs=1e-5)

    @given(points, paths, st.integers(min_value=0, max_value=100))
    @settings(max_examples=60)
    def test_roundtrip(self, point, path, quality):
        response = parse_response(render_success(point, path, quality))
        assert response.ok
        assert response.path == path
        assert response.quality == quality
        assert response.point.lat == pytest.approx(point.lat, abs=1e-5)
        assert response.point.lon == pytest.approx(point.lon, abs=1e-5)


class TestError:
    def test_render_parse_error(self):
        response = parse_response(render_error(100, "No result"))
        assert not response.ok
        assert response.error_code == 100
        assert response.found == 0
        assert response.path is None


class TestMalformed:
    @pytest.mark.parametrize(
        "document",
        [
            "not xml at all",
            "<Wrong/>",
            "<ResultSet><Error>0</Error></ResultSet>",  # missing Found
            "<ResultSet><Error>x</Error><ErrorMessage>m</ErrorMessage>"
            "<Found>1</Found></ResultSet>",  # non-numeric error
            "<ResultSet><Error>0</Error><ErrorMessage>m</ErrorMessage>"
            "<Found>1</Found></ResultSet>",  # found but no Result
        ],
    )
    def test_rejected(self, document):
        with pytest.raises(MalformedResponseError):
            parse_response(document)

    def test_result_without_location(self):
        document = (
            "<ResultSet><Error>0</Error><ErrorMessage>m</ErrorMessage>"
            "<Found>1</Found><Result><quality>87</quality>"
            "<latitude>1</latitude><longitude>2</longitude></Result></ResultSet>"
        )
        with pytest.raises(MalformedResponseError):
            parse_response(document)
